package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// cellSpec names one simulation cell of a job, in library terms: the
// suite resolves (app, algorithm, procs, infinite) to (trace, placement,
// config) exactly as cmd/experiments does, or uses the explicit
// placement/config carried here.
type cellSpec struct {
	app       string
	algorithm string // server-side algorithm name; "" when explicit
	procs     int
	infinite  bool
	engine    string // normalized: guarded/fast/reference

	// Explicit-cell fields (POST /v1/simulate with "placement"/"config").
	explicitPlacement *PlacementSpec
	explicitConfig    *sim.Config
	counters          bool
}

// task is one unit of queue work: cell index cell of job j. enq is the
// enqueue instant, feeding the queue-wait histogram and span.
type task struct {
	j    *job
	cell int
	enq  time.Time
}

// taskQueue is a bounded FIFO guarded by a mutex and condition variable.
// Pushes never block — a full queue is the caller's backpressure signal
// (HTTP 429) — and TryPushAll is all-or-nothing so a sweep is either
// accepted whole or not at all. Pop blocks until work arrives or the
// queue closes; Close stops the workers immediately and returns whatever
// was still queued so the server can mark those jobs retriable (drain
// semantics: in-flight cells finish, queued cells are handed back).
type taskQueue struct {
	mu       sync.Mutex
	nonEmpty sync.Cond
	buf      []task
	head     int
	n        int
	closed   bool
}

func newTaskQueue(capacity int) *taskQueue {
	q := &taskQueue{buf: make([]task, capacity)}
	q.nonEmpty.L = &q.mu
	return q
}

// TryPushAll enqueues all tasks or none. It reports false when the queue
// lacks space for the whole batch or is closed.
func (q *taskQueue) TryPushAll(ts []task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.n+len(ts) > len(q.buf) {
		return false
	}
	for _, t := range ts {
		q.buf[(q.head+q.n)%len(q.buf)] = t
		q.n++
	}
	q.nonEmpty.Broadcast()
	return true
}

// Pop dequeues one task, blocking while the queue is open and empty.
// ok is false once the queue has closed — even if tasks remain; Close
// already collected them.
func (q *taskQueue) Pop() (t task, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		return task{}, false
	}
	t = q.buf[q.head]
	q.buf[q.head] = task{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return t, true
}

// Depth returns the number of queued tasks.
func (q *taskQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Close shuts the queue and returns the tasks it still held, in order.
// Idempotent; later calls return nil.
func (q *taskQueue) Close() []task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	rest := make([]task, 0, q.n)
	for q.n > 0 {
		rest = append(rest, q.buf[q.head])
		q.buf[q.head] = task{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
	}
	q.nonEmpty.Broadcast()
	return rest
}

// Per-cell lifecycle states. A cell is pending until a worker picks it
// up, then running, then done or failed. Stolen and drained are the two
// ways a cell leaves a job without running: a steal hands it back to the
// coordinator that leased it, a drain hands the whole job back to the
// client as retriable. Either way the cell never produces a result here
// and is safe to re-run elsewhere (simulations are deterministic and
// idempotent).
const (
	cellPending uint8 = iota
	cellRunning
	cellDone
	cellFailed
	cellStolen
	cellDrained
)

// cellStateNames maps cell states to their wire labels (LeaseStatus).
var cellStateNames = [...]string{
	cellPending: "pending",
	cellRunning: "running",
	cellDone:    "done",
	cellFailed:  "failed",
	cellStolen:  "stolen",
	cellDrained: "drained",
}

// job tracks one accepted request — a sweep, a coordinator lease, or a
// single synchronous cell modeled as a one-cell job so every simulation
// flows through the same queue, accounting and drain path.
type job struct {
	id     string
	params Params // resolved (never nil) workload params
	cells  []cellSpec

	// trace is the distributed-trace context this job's spans hang off
	// (zero when telemetry is disabled). Set once before enqueue, read-only
	// afterwards.
	//
	//mtlint:guard external -- written only by the accepting handler before enqueue publishes the job
	trace obs.SpanContext
	// span is the job's root span, ended when the job reaches a terminal
	// state (nil when telemetry is disabled; End is nil-safe). Set with
	// trace, under the same write-once contract.
	//
	//mtlint:guard external -- written only by the accepting handler before enqueue publishes the job
	span *obs.ActiveSpan
	// webhookURL is the sweep's terminal-state delivery target ("" for
	// none). Set with trace, under the same write-once contract.
	//
	//mtlint:guard external -- written only by the accepting handler before enqueue publishes the job
	webhookURL string

	// cancel is observed by sim.Guard inside running cells; setting it
	// aborts them with a BudgetError.
	cancel atomic.Bool

	mu        sync.Mutex
	status    string
	states    []uint8 // per-cell lifecycle, indexed like cells
	pending   int     // cells not yet finished (completed+failed accounting)
	completed int
	stolen    int
	results   []cellResultInternal
	err       error

	doneOnce sync.Once
	done     chan struct{} // closed when the job reaches a terminal state
}

// cellResultInternal is a finished cell before wire encoding.
type cellResultInternal struct {
	key    string
	cached bool
	res    *sim.Result
	// counters is set only for single-cell jobs that requested probes
	// and actually simulated.
	counters *obs.Counter
	err      error
}

func newJob(id string, params Params, cells []cellSpec) *job {
	return &job{
		id:      id,
		params:  params,
		cells:   cells,
		status:  StatusQueued,
		states:  make([]uint8, len(cells)),
		pending: len(cells),
		results: make([]cellResultInternal, len(cells)),
		done:    make(chan struct{}),
	}
}

// begin transitions queued → running when the first cell begins and
// claims cell for execution. It reports false when the cell was stolen
// (or drained) while it sat in the queue — the worker must skip it.
func (j *job) begin(cell int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.states[cell] != cellPending {
		return false
	}
	j.states[cell] = cellRunning
	if j.status == StatusQueued {
		j.status = StatusRunning
	}
	return true
}

// finishCell records one cell's outcome; the last cell finalizes the
// job's terminal status. Returns true when this call completed the job.
func (j *job) finishCell(cell int, r cellResultInternal) bool {
	j.mu.Lock()
	j.results[cell] = r
	j.pending--
	if r.err == nil {
		j.states[cell] = cellDone
		j.completed++
	} else {
		j.states[cell] = cellFailed
		if j.err == nil {
			j.err = r.err
		}
	}
	last := j.pending == 0
	if last && (j.status == StatusQueued || j.status == StatusRunning) {
		switch {
		case j.cancel.Load() && j.err != nil:
			j.status = StatusCanceled
		case j.err != nil:
			j.status = StatusFailed
		default:
			j.status = StatusDone
		}
	}
	j.mu.Unlock()
	if last {
		j.finish()
	}
	return last
}

// finish closes the done channel and ends the job's root span, exactly
// once across the three terminal paths (finishCell, steal, drain).
func (j *job) finish() {
	j.doneOnce.Do(func() {
		close(j.done)
		j.span.End()
	})
}

// steal reclaims up to max not-yet-started cells, preferring the tail of
// the cell list (the classic steal-from-the-back discipline: the owner
// drains its lease front-to-back, thieves take from the opposite end).
// Stolen cells never run here; the caller re-grants them elsewhere.
// Returns the stolen cell indices in ascending order.
func (j *job) steal(max int) []int {
	if max <= 0 {
		return nil
	}
	j.mu.Lock()
	var stolen []int
	for i := len(j.cells) - 1; i >= 0 && len(stolen) < max; i-- {
		if j.states[i] == cellPending {
			j.states[i] = cellStolen
			j.stolen++
			j.pending--
			stolen = append(stolen, i)
		}
	}
	last := j.pending == 0 && len(stolen) > 0
	if last && (j.status == StatusQueued || j.status == StatusRunning) {
		switch {
		case j.err != nil:
			j.status = StatusFailed
		default:
			j.status = StatusDone
		}
	}
	j.mu.Unlock()
	if last {
		j.finish()
	}
	// Reverse into ascending order (collected back-to-front).
	for l, r := 0, len(stolen)-1; l < r; l, r = l+1, r-1 {
		stolen[l], stolen[r] = stolen[r], stolen[l]
	}
	return stolen
}

// markRetriable finalizes a job whose queued cells were drained before
// running: the client should resubmit (same content-addressed ID) after
// the restart. cells lists the drained queue entries; only those still
// pending count (a stolen cell already left the job's accounting).
// Returns how many cells this drain actually took out of the job.
func (j *job) markRetriable(cells []int) int {
	j.mu.Lock()
	drained := 0
	for _, c := range cells {
		if j.states[c] == cellPending {
			j.states[c] = cellDrained
			j.pending--
			drained++
		}
	}
	if drained > 0 && (j.status == StatusQueued || j.status == StatusRunning) {
		j.status = StatusRetriable
	}
	terminal := j.pending <= 0
	j.mu.Unlock()
	if terminal {
		j.finish()
	}
	return drained
}

// snapshot returns the job's wire status. Results are attached only for
// terminal successful jobs (done), matching the polling contract.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		Job:       j.id,
		Status:    j.status,
		Cells:     len(j.cells),
		Completed: j.completed,
		Trace:     j.trace.Trace,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.status == StatusDone {
		st.Results = make([]CellResult, len(j.cells))
		for i, c := range j.cells {
			r := j.results[i]
			st.Results[i] = CellResult{
				App:       c.app,
				Algorithm: c.algorithm,
				Procs:     c.procs,
				Key:       r.key,
				Cached:    r.cached,
				Result:    r.res,
			}
		}
	}
	return st
}

// terminal reports whether the job has reached a final status.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone, StatusFailed, StatusRetriable, StatusCanceled:
		return true
	}
	return false
}

// maxTerminalJobs bounds the registry: terminal jobs beyond this are
// evicted oldest-first, so an unattended server cannot grow without
// bound. Live (queued/running) jobs are never evicted.
const maxTerminalJobs = 256

// jobRegistry indexes jobs by ID and bounds retained terminal jobs.
type jobRegistry struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []string // insertion order, for eviction scans
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{byID: make(map[string]*job)}
}

// get returns the job with this ID, if known.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// add registers a job, evicting surplus terminal jobs. If a job with the
// same ID exists it is returned with existing=true and j is discarded —
// content-addressed IDs make resubmission of an identical sweep a lookup.
func (r *jobRegistry) add(j *job) (reg *job, existing bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byID[j.id]; ok {
		return prev, true
	}
	r.byID[j.id] = j
	r.order = append(r.order, j.id)
	r.evictLocked()
	return j, false
}

// remove forgets a job (used for one-cell synchronous jobs once their
// response is written; they are never polled).
func (r *jobRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byID, id)
}

// all returns every registered job.
func (r *jobRegistry) all() []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*job, 0, len(r.byID))
	for _, id := range r.order {
		if j, ok := r.byID[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

func (r *jobRegistry) evictLocked() {
	terminal := 0
	for _, id := range r.order {
		if j, ok := r.byID[id]; ok && j.terminal() {
			terminal++
		}
	}
	if terminal <= maxTerminalJobs {
		return
	}
	keep := r.order[:0]
	for _, id := range r.order {
		j, ok := r.byID[id]
		if !ok {
			continue
		}
		if terminal > maxTerminalJobs && j.terminal() {
			delete(r.byID, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	r.order = keep
}
