package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// The telemetry endpoints (both also served by the mtcoord coordinator):
//
//	GET /v1/jobs/{id}/events  SSE stream of job/cell/sample events
//	GET /v1/trace/{id}        Perfetto trace-event JSON for one trace ID
//	                          (?format=spans for the raw span list)
//
// SSE semantics: the stream opens with a "job" snapshot event, then
// relays bus events for the job. The bus drops events on slow
// subscribers (serve_stream_dropped_events_total counts them; Seq gaps
// reveal the loss), but the terminal "job" event is delivered
// out-of-band off the job's done channel, so every stream ends with the
// job's final state no matter what was dropped in between.

// JobEvent is the "job" SSE event: a job-level state snapshot.
type JobEvent struct {
	Job       string `json:"job"`
	Status    string `json:"status"`
	Cells     int    `json:"cells"`
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
}

// CellEvent is the "cell" SSE event: one cell reached a terminal state.
type CellEvent struct {
	Job  string `json:"job"`
	Cell int    `json:"cell"`
	// Worker is the executing worker's ID on coordinator streams; empty
	// on a worker's own stream (the worker is the stream).
	Worker    string `json:"worker,omitempty"`
	App       string `json:"app"`
	Algorithm string `json:"algorithm,omitempty"`
	Procs     int    `json:"procs"`
	State     string `json:"state"`
	Key       string `json:"key,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
}

// SampleEvent is the "sample" SSE event: one Sampler window of a
// streaming cell.
type SampleEvent struct {
	Job    string     `json:"job"`
	Cell   int        `json:"cell"`
	Window uint64     `json:"window"`
	Sample obs.Sample `json:"sample"`
}

// TraceSpans is the GET /v1/trace/{id}?format=spans reply; the
// coordinator uses it to merge worker spans into one timeline.
type TraceSpans struct {
	Trace string     `json:"trace"`
	Spans []obs.Span `json:"spans"`
}

// jobTopic names a job's bus topic.
func jobTopic(id string) string { return "job:" + id }

// cellLabel names a cell for spans and logs.
func cellLabel(c cellSpec) string {
	alg := c.algorithm
	if alg == "" && c.explicitPlacement != nil {
		alg = c.explicitPlacement.Algorithm
	}
	return fmt.Sprintf("%s/%s/p%d", c.app, alg, c.procs)
}

// JobEventOf projects a status snapshot into its SSE form (shared with
// the mtcoord coordinator, which streams the same wire format).
func JobEventOf(st JobStatus) JobEvent {
	return JobEvent{Job: st.Job, Status: st.Status, Cells: st.Cells, Completed: st.Completed, Error: st.Error}
}

// publishJob emits a job-level state event.
func (s *Server) publishJob(j *job) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(jobTopic(j.id), "job", JobEventOf(j.snapshot()))
}

// publishCell emits one finished cell.
func (s *Server) publishCell(j *job, cell int, r cellResultInternal) {
	if s.bus == nil {
		return
	}
	c := j.cells[cell]
	ev := CellEvent{
		Job: j.id, Cell: cell, App: c.app, Algorithm: c.algorithm, Procs: c.procs,
		State: cellStateNames[cellDone], Key: r.key, Cached: r.cached,
	}
	if r.err != nil {
		ev.State = cellStateNames[cellFailed]
		ev.Error = r.err.Error()
	}
	s.bus.Publish(jobTopic(j.id), "cell", ev)
}

// traceFromRequest extracts the caller's trace context from the
// Mtsim-Trace header, or mints a fresh root when absent or malformed.
// Returns the zero context when telemetry is off.
func (s *Server) traceFromRequest(r *http.Request) obs.SpanContext {
	if s.spans == nil {
		return obs.SpanContext{}
	}
	if ctx, ok := obs.ParseTrace(r.Header.Get(obs.TraceHeader)); ok {
		return ctx
	}
	return obs.NewTrace()
}

// sseKeepalive is the comment-ping interval holding idle streams open
// through proxies.
const sseKeepalive = 15 * time.Second

// sseBuffer is the per-subscriber event buffer; a client slower than
// this many outstanding events starts losing intermediate ones.
const sseBuffer = 256

// WriteSSE writes one event in text/event-stream framing (shared with
// the mtcoord coordinator's stream handler).
func WriteSSE(w http.ResponseWriter, ev obs.Event) error {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}

// handleJobEvents streams a job's progress as server-sent events.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id, false)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported", false)
		return
	}

	// Subscribe before the snapshot so no transition can fall between
	// snapshot and stream.
	var events <-chan obs.Event
	if s.bus != nil {
		sub := s.bus.Subscribe(jobTopic(id), sseBuffer)
		defer sub.Close()
		events = sub.C()
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	st := j.snapshot()
	if err := WriteSSE(w, obs.Event{Kind: "job", Data: JobEventOf(st)}); err != nil {
		return
	}
	fl.Flush()
	if TerminalStatus(st.Status) {
		return
	}

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev := <-events:
			if err := WriteSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
			if je, ok := ev.Data.(JobEvent); ok && TerminalStatus(je.Status) {
				return
			}
		case <-j.done:
			// Terminal delivery is guaranteed off the done channel, not the
			// bus: even a subscriber that dropped everything gets the final
			// state.
			_ = WriteSSE(w, obs.Event{Kind: "job", Data: JobEventOf(j.snapshot())})
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// TerminalStatus reports whether a wire job status is final.
func TerminalStatus(status string) bool {
	switch status {
	case StatusDone, StatusFailed, StatusRetriable, StatusCanceled:
		return true
	}
	return false
}

// handleTrace exports one trace as Perfetto trace-event JSON (or the raw
// span list with ?format=spans).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeError(w, http.StatusNotFound, "tracing disabled", false)
		return
	}
	id := r.PathValue("id")
	spans := s.spans.Trace(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "unknown trace "+id, false)
		return
	}
	if r.URL.Query().Get("format") == "spans" {
		writeJSON(w, http.StatusOK, TraceSpans{Trace: id, Spans: spans})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WritePerfetto(w, id, spans)
}
