package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/advise"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/resilience"
	"repro/internal/serve/rescache"
	"repro/internal/serve/webhook"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the task queue (default 4 * Workers * 32); a full
	// queue answers 429.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (default
	// 4096 results).
	CacheEntries int
	// MaxSteps is the per-cell simulation step budget (0 = unlimited).
	MaxSteps uint64
	// RequestTimeout cancels a cell's simulation wall-clock-wise
	// (0 = no timeout). Enforced via the job's cancel flag, which the
	// simulator polls, so a stuck cell aborts with a BudgetError.
	RequestTimeout time.Duration
	// SampleEvery cross-checks every Nth guarded run against the
	// reference engine (default 16; 0 disables cross-checking).
	SampleEvery int
	// MinCellTime pads every simulated (non-cached) cell to a minimum
	// wall-clock service time. Zero in production; the cluster
	// self-benchmark sets it so shrunken benchmark cells model the
	// service time of full-scale cells (BENCH_cluster.json records the
	// value used).
	MinCellTime time.Duration
	// BeforeCell, when non-nil, runs at the start of every cell
	// execution. It is a test and benchmark hook (chaos tests slow one
	// worker down to manufacture a straggler); nil in production.
	BeforeCell func()
	// ServiceName labels this server's spans on the distributed-trace
	// timeline (default "mtserve"; clustered workers use their worker ID).
	ServiceName string
	// SpanCapacity bounds the in-process span store
	// (default obs.DefaultSpanCapacity).
	SpanCapacity int
	// StreamWindow, when positive, attaches an obs.Sampler with this
	// window width (simulated cycles) to cells whose job has a live SSE
	// subscriber, streaming per-window samples as "sample" events. Zero
	// streams job/cell transitions only.
	StreamWindow uint64
	// DisableTelemetry turns off the span store and event bus entirely:
	// no spans recorded, /v1/trace answers 404, SSE streams carry only
	// the initial snapshot and terminal event. Histograms stay on (three
	// atomic adds per observation).
	DisableTelemetry bool
	// Store, when non-nil, is the durable result tier under the in-memory
	// cache: cache miss → store probe → simulate, with every fresh result
	// written back. The caller owns the store's lifecycle (Close after
	// Drain). Nil means memory-only, exactly the pre-store behavior.
	Store *store.Store
	// Webhooks, when non-nil, delivers terminal job states to sweeps
	// submitted with a webhook_url. The caller owns the dispatcher's
	// lifecycle (Close after Drain). Nil disables webhook delivery
	// (webhook_url is still validated and accepted, then ignored).
	Webhooks *webhook.Dispatcher
	// Log receives operational messages; nil discards them.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		// Default: a single maximal sweep must be acceptable when idle
		// (the all-or-nothing push would otherwise always refuse it).
		// An explicit smaller depth is honored — tests and memory-tight
		// deployments trade sweep size for footprint.
		o.QueueDepth = o.Workers * 128
		if o.QueueDepth < MaxSweepCells {
			o.QueueDepth = MaxSweepCells
		}
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.SampleEvery < 0 {
		o.SampleEvery = 0
	}
	if o.ServiceName == "" {
		o.ServiceName = "mtserve"
	}
	return o
}

// suiteEntry is one cached core.Suite, keyed by workload params. The
// server uses suites only to resolve cells — traces, sharing data,
// placements, per-app configs — never Suite.RunOne, so a suite's memory
// stays bounded by the workload, not by the request history (results
// live in the server's own LRU instead).
type suiteEntry struct {
	params Params
	suite  *core.Suite
	used   uint64 // LRU tick
}

// maxSuites bounds distinct workload-param sets kept resident.
const maxSuites = 4

// flight deduplicates concurrent misses on the same cell key: the first
// worker simulates, later workers wait and share the result.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// serverMetrics is every /metrics series, registered once at startup so
// the exposition is complete (all series present, zero-valued) from the
// first scrape.
type serverMetrics struct {
	set *obs.MetricSet

	requests      *obs.Metric
	resp2xx       *obs.Metric
	resp4xx       *obs.Metric
	resp5xx       *obs.Metric
	rejectedFull  *obs.Metric
	cacheHits     *obs.Metric
	cacheMisses   *obs.Metric
	cacheEvicts   *obs.Metric
	simRuns       *obs.Metric
	simFailures   *obs.Metric
	jobsAccepted  *obs.Metric
	jobsCompleted *obs.Metric
	jobsFailed    *obs.Metric
	jobsRetriable *obs.Metric
	jobsCanceled  *obs.Metric
	sfShared      *obs.Metric
	leasesGranted *obs.Metric
	cellsStolen   *obs.Metric
	queueDepth    *obs.Metric
	inFlight      *obs.Metric
	workers       *obs.Metric
	degraded      *obs.Metric
	streamDropped *obs.Metric

	storeHits        *obs.Metric
	storeMisses      *obs.Metric
	storePuts        *obs.Metric
	storeQuarantined *obs.Metric
	storeSegments    *obs.Metric
	webhookPending   *obs.Metric
	webhookDelivered *obs.Metric
	webhookFailed    *obs.Metric
	webhookRetries   *obs.Metric

	reqLatency *obs.Histogram
	queueWait  *obs.Histogram
	engineRate *obs.Histogram
}

func newServerMetrics() *serverMetrics {
	s := obs.NewMetricSet()
	return &serverMetrics{
		set:           s,
		requests:      s.Counter("serve_http_requests_total", "HTTP requests received"),
		resp2xx:       s.Counter("serve_http_responses_2xx_total", "HTTP responses with 2xx status"),
		resp4xx:       s.Counter("serve_http_responses_4xx_total", "HTTP responses with 4xx status"),
		resp5xx:       s.Counter("serve_http_responses_5xx_total", "HTTP responses with 5xx status"),
		rejectedFull:  s.Counter("serve_rejected_queue_full_total", "requests refused with 429 because the queue was full"),
		cacheHits:     s.Counter("serve_cache_hits_total", "result cache hits"),
		cacheMisses:   s.Counter("serve_cache_misses_total", "result cache misses"),
		cacheEvicts:   s.Counter("serve_cache_evictions_total", "result cache evictions"),
		simRuns:       s.Counter("serve_sim_runs_total", "simulations executed (cache misses actually run)"),
		simFailures:   s.Counter("serve_sim_failures_total", "simulations that returned an error"),
		jobsAccepted:  s.Counter("serve_jobs_accepted_total", "jobs accepted into the queue"),
		jobsCompleted: s.Counter("serve_jobs_completed_total", "jobs finished successfully"),
		jobsFailed:    s.Counter("serve_jobs_failed_total", "jobs finished with an error"),
		jobsRetriable: s.Counter("serve_jobs_retriable_total", "jobs drained before completion (resubmit after restart)"),
		jobsCanceled:  s.Counter("serve_jobs_canceled_total", "jobs canceled by their client"),
		sfShared:      s.Counter("serve_singleflight_shared_total", "cell computations shared between concurrent identical requests"),
		leasesGranted: s.Counter("serve_leases_granted_total", "coordinator leases accepted into the queue"),
		cellsStolen:   s.Counter("serve_lease_cells_stolen_total", "lease cells reclaimed by the coordinator before running"),
		queueDepth:    s.Gauge("serve_queue_depth", "tasks waiting in the queue"),
		inFlight:      s.Gauge("serve_inflight_cells", "cells currently simulating"),
		workers:       s.Gauge("serve_workers", "worker pool size"),
		degraded:      s.Gauge("serve_degraded", "1 once the fast engine is benched"),
		streamDropped: s.Counter("serve_stream_dropped_events_total", "SSE events dropped on slow subscribers"),

		storeHits:        s.Counter("serve_store_hits_total", "durable result store hits"),
		storeMisses:      s.Counter("serve_store_misses_total", "durable result store misses"),
		storePuts:        s.Counter("serve_store_puts_total", "results written to the durable store"),
		storeQuarantined: s.Counter("serve_store_quarantined_total", "store segments quarantined for corruption"),
		storeSegments:    s.Gauge("serve_store_sealed_segments", "sealed segments in the durable store"),
		webhookPending:   s.Gauge("serve_webhook_pending", "webhook deliveries awaiting a terminal outcome"),
		webhookDelivered: s.Counter("serve_webhook_delivered_total", "webhook deliveries acknowledged 2xx"),
		webhookFailed:    s.Counter("serve_webhook_failed_total", "webhook deliveries failed after exhausting attempts"),
		webhookRetries:   s.Counter("serve_webhook_retries_total", "webhook delivery attempts beyond the first"),

		reqLatency: s.Histogram("serve_request_latency_us", "HTTP request latency in microseconds"),
		queueWait:  s.Histogram("serve_queue_wait_us", "cell time from enqueue to execution start in microseconds"),
		engineRate: s.Histogram("serve_engine_cycles_per_sec", "simulated cycles per wall-clock second per engine run"),
	}
}

// Server is the simulation service: a worker pool draining a bounded
// queue of cells, backed by a content-addressed result cache and an
// engine guard. Create with NewServer, serve via Handler, stop with
// Drain.
type Server struct {
	opts    Options
	queue   *taskQueue
	cache   *rescache.Cache
	guard   *resilience.EngineGuard
	jobs    *jobRegistry
	metrics *serverMetrics

	// spans and bus are the telemetry layer; both nil when
	// Options.DisableTelemetry (every call site nil-guards, enforced by
	// mtlint's probeguard analyzer).
	spans *obs.SpanStore
	bus   *obs.Bus

	mu       sync.Mutex
	suites   []*suiteEntry
	suiteUse uint64
	flights  map[rescache.Key]*flight
	inFlight int
	draining bool

	wg sync.WaitGroup

	// Test hooks, nil in production. When set, every cell execution first
	// sends its cell key on cellStarted, then blocks until cellGate is
	// closed or receives — letting the drain test freeze a worker
	// mid-cell deterministically.
	cellStarted chan string
	cellGate    chan struct{}
}

// NewServer builds a Server and starts its workers.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		queue:   newTaskQueue(opts.QueueDepth),
		cache:   rescache.New(opts.CacheEntries),
		jobs:    newJobRegistry(),
		metrics: newServerMetrics(),
		flights: make(map[rescache.Key]*flight),
	}
	if !opts.DisableTelemetry {
		s.spans = obs.NewSpanStore(opts.SpanCapacity)
		s.bus = obs.NewBus(s.metrics.streamDropped)
	}
	s.guard = &resilience.EngineGuard{
		SampleEvery: opts.SampleEvery,
		OnFallback: func(rep resilience.DivergenceReport) {
			s.metrics.degraded.Set(1)
			if opts.Log != nil {
				opts.Log.Warn("fast engine benched", "divergence", rep.String())
			}
		},
	}
	if s.guard.SampleEvery == 0 && opts.SampleEvery == 0 {
		s.guard.SampleEvery = 16
	}
	s.metrics.workers.Set(int64(opts.Workers))
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Guard exposes the server's engine guard (for health reporting and
// tests).
func (s *Server) Guard() *resilience.EngineGuard { return s.guard }

// Metrics exposes the server's metric registry.
func (s *Server) Metrics() *obs.MetricSet { return s.metrics.set }

// CacheStats returns the result cache counters.
func (s *Server) CacheStats() rescache.Stats { return s.cache.Stats() }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain refuses new work, lets in-flight cells finish, marks queued
// cells' jobs retriable, and waits for the workers to exit. An accepted
// job is never lost: it ends done, failed, canceled — or retriable, and
// a retriable job's content-addressed ID resubmitted to a restarted
// server rebuilds the identical results.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()

	rest := s.queue.Close()
	// Collect drained cells per job, then finalize each job once. Only
	// cells still pending count — a cell stolen back by a coordinator
	// already left this job's accounting.
	drained := make(map[*job][]int)
	for _, t := range rest {
		drained[t.j] = append(drained[t.j], t.cell)
	}
	for j, cells := range drained {
		if n := j.markRetriable(cells); n > 0 {
			s.metrics.jobsRetriable.Inc()
			s.publishJob(j)
			s.notifyJob(j, j.snapshot())
			if s.opts.Log != nil {
				s.opts.Log.Info("drain: job marked retriable", "job", j.id, "cells_not_run", n)
			}
		}
	}
	s.metrics.queueDepth.Set(0)
	s.wg.Wait()
}

// suiteFor returns the (cached) suite for these params.
func (s *Server) suiteFor(p Params) *core.Suite {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.suiteUse++
	for _, e := range s.suites {
		if e.params == p {
			e.used = s.suiteUse
			return e.suite
		}
	}
	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: p.Scale, Seed: p.Seed}
	e := &suiteEntry{params: p, suite: core.NewSuite(opts), used: s.suiteUse}
	if len(s.suites) >= maxSuites {
		oldest := 0
		for i, se := range s.suites {
			if se.used < s.suites[oldest].used {
				oldest = i
			}
		}
		s.suites[oldest] = s.suites[len(s.suites)-1]
		s.suites = s.suites[:len(s.suites)-1]
	}
	s.suites = append(s.suites, e)
	return e.suite
}

// resolveParams fills nil request params with the library defaults.
func resolveParams(p *Params) Params {
	if p != nil {
		return *p
	}
	d := workload.DefaultParams()
	return Params{Scale: d.Scale, Seed: d.Seed}
}

// normalizeEngine maps "" to the default engine label.
func normalizeEngine(e string) string {
	if e == "" {
		return EngineGuarded
	}
	return e
}

// errServerDraining is returned for work refused because of shutdown.
var errServerDraining = errors.New("server is draining")

// enqueue pushes a job's cells onto the queue atomically (all or none).
func (s *Server) enqueue(j *job) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errServerDraining
	}
	s.mu.Unlock()

	now := time.Now()
	ts := make([]task, len(j.cells))
	for i := range j.cells {
		ts[i] = task{j: j, cell: i, enq: now}
	}
	if !s.queue.TryPushAll(ts) {
		s.metrics.rejectedFull.Inc()
		if s.Draining() {
			return errServerDraining
		}
		return errQueueFull
	}
	s.metrics.jobsAccepted.Inc()
	s.metrics.queueDepth.Set(int64(s.queue.Depth()))
	return nil
}

// submitSweep registers a sweep job by its content-addressed ID and
// enqueues its cells. An identical sweep already known (live or kept
// terminal) is returned as-is with existing=true — resubmission is a
// lookup, which is exactly what a drained client does after a restart.
func (s *Server) submitSweep(j *job) (reg *job, existing bool, err error) {
	reg, existing = s.jobs.add(j)
	if existing {
		// A previously drained job is resubmittable: forget the stale
		// record and queue the fresh one.
		reg.mu.Lock()
		retriable := reg.status == StatusRetriable
		reg.mu.Unlock()
		if !retriable {
			return reg, true, nil
		}
		s.jobs.remove(reg.id)
		reg, existing = s.jobs.add(j)
		if existing {
			return reg, true, nil
		}
	}
	if err := s.enqueue(j); err != nil {
		s.jobs.remove(j.id)
		return nil, false, err
	}
	return j, false, nil
}

// errQueueFull is the backpressure signal behind HTTP 429.
var errQueueFull = errors.New("job queue is full")

// worker drains the queue until it closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.metrics.queueDepth.Set(int64(s.queue.Depth()))
		s.runTask(t)
	}
}

// runTask executes one cell of one job and records the outcome; the last
// cell finalizes the job and its metrics. A cell stolen while it sat in
// the queue is skipped — its thief runs it elsewhere.
func (s *Server) runTask(t task) {
	if !t.j.begin(t.cell) {
		return
	}
	s.metrics.queueWait.Observe(time.Since(t.enq).Microseconds())
	if s.spans != nil && t.j.trace.Valid() {
		s.spans.AddSpan(t.j.trace, s.opts.ServiceName, "queue wait", t.enq, time.Now())
	}
	s.mu.Lock()
	s.inFlight++
	s.metrics.inFlight.Set(int64(s.inFlight))
	s.mu.Unlock()

	r := s.runCell(t.j, t.cell)

	s.mu.Lock()
	s.inFlight--
	s.metrics.inFlight.Set(int64(s.inFlight))
	s.mu.Unlock()

	last := t.j.finishCell(t.cell, r)
	s.publishCell(t.j, t.cell, r)
	if last {
		st := t.j.snapshot()
		switch st.Status {
		case StatusDone:
			s.metrics.jobsCompleted.Inc()
		case StatusCanceled:
			s.metrics.jobsCanceled.Inc()
		case StatusFailed:
			s.metrics.jobsFailed.Inc()
		}
		s.publishJob(t.j)
		s.notifyJob(t.j, st)
	}
}

// resolveCell turns a cellSpec into the concrete (trace, placement,
// config) triple, reusing the suite's derivations so the served cell is
// identical to the library cell.
func (s *Server) resolveCell(params Params, c cellSpec) (*trace.Trace, *placement.Placement, sim.Config, error) {
	suite := s.suiteFor(params)
	tr, err := suite.Trace(c.app)
	if err != nil {
		return nil, nil, sim.Config{}, err
	}
	var pl *placement.Placement
	if c.explicitPlacement != nil {
		pl = &placement.Placement{
			Algorithm: c.explicitPlacement.Algorithm,
			Clusters:  c.explicitPlacement.Clusters,
		}
	} else if spec, ok, perr := advise.ParseOnlineAlgorithm(c.algorithm); ok || perr != nil {
		if perr != nil {
			return nil, nil, sim.Config{}, perr
		}
		// Online cell: place with the spec's static seed, then rename the
		// placement to the canonical ONLINE name so every cache, store and
		// shard key carries the full online configuration. Copy before
		// renaming — the suite shares placements across cells.
		seed, err := suite.Place(c.app, spec.SeedAlgorithm(), c.procs)
		if err != nil {
			return nil, nil, sim.Config{}, err
		}
		onl := *seed
		onl.Algorithm = spec.String()
		pl = &onl
	} else {
		pl, err = suite.Place(c.app, c.algorithm, c.procs)
		if err != nil {
			return nil, nil, sim.Config{}, err
		}
	}
	var cfg sim.Config
	if c.explicitConfig != nil {
		cfg = *c.explicitConfig
	} else {
		cfg, err = suite.Config(c.app, c.procs, c.infinite)
		if err != nil {
			return nil, nil, sim.Config{}, err
		}
	}
	return tr, pl, cfg, nil
}

// runCell executes one cell: cache lookup, single-flight dedup, guarded
// simulation, cache fill. When tracing is on, the cell and its cache
// lookup and engine run each become spans on the job's trace.
func (s *Server) runCell(j *job, cell int) cellResultInternal {
	c := j.cells[cell]
	var cellSpan *obs.ActiveSpan
	sctx := obs.SpanContext{}
	if s.spans != nil && j.trace.Valid() {
		cellSpan = s.spans.Start(j.trace, s.opts.ServiceName, "cell "+cellLabel(c))
		defer cellSpan.End()
		sctx = cellSpan.Context()
	}

	if s.opts.BeforeCell != nil {
		s.opts.BeforeCell()
	}
	tr, pl, cfg, err := s.resolveCell(j.params, c)
	if err != nil {
		return cellResultInternal{err: err}
	}
	key := rescache.KeyOf(j.params.Scale, j.params.Seed, c.app, core.PlacementKey(pl), cfg, c.engine)
	keyHex := key.String()

	if s.cellStarted != nil {
		s.cellStarted <- keyHex
		<-s.cellGate
	}

	// The cache counts hits/misses/evictions authoritatively; /metrics
	// mirrors its counters at scrape time.
	lookupStart := time.Now()
	res := s.cache.Get(key)
	if s.spans != nil && sctx.Valid() {
		s.spans.AddSpan(sctx, s.opts.ServiceName, "cache lookup", lookupStart, time.Now())
	}
	if res != nil {
		cellSpan.SetNote("cache hit")
		return cellResultInternal{key: keyHex, cached: true, res: res}
	}

	// Single-flight: concurrent identical misses share one simulation.
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.metrics.sfShared.Inc()
		waitStart := time.Now()
		<-f.done
		if s.spans != nil && sctx.Valid() {
			s.spans.AddSpan(sctx, s.opts.ServiceName, "singleflight wait", waitStart, time.Now())
		}
		if f.err != nil {
			return cellResultInternal{key: keyHex, err: f.err}
		}
		return cellResultInternal{key: keyHex, res: f.res}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	// Durable tier: a store hit is served (and promoted into the memory
	// cache) without simulating — this is how a restarted server warm
	// starts from disk.
	if res := s.storeGet(key, sctx); res != nil {
		f.res = res
		close(f.done)
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		s.cache.Put(key, res)
		cellSpan.SetNote("store hit")
		return cellResultInternal{key: keyHex, cached: true, res: res}
	}

	var engineSpan *obs.ActiveSpan
	if s.spans != nil && sctx.Valid() {
		engineSpan = s.spans.Start(sctx, s.opts.ServiceName, "engine "+c.engine)
	}
	t0 := time.Now()
	res, counters, err := s.simulate(j, c, cell, tr, pl, cfg)
	if err == nil && res != nil {
		if sec := time.Since(t0).Seconds(); sec > 0 {
			s.metrics.engineRate.Observe(int64(float64(res.ExecTime) / sec))
		}
	}
	engineSpan.End()
	if s.opts.MinCellTime > 0 {
		if rest := s.opts.MinCellTime - time.Since(t0); rest > 0 {
			time.Sleep(rest)
		}
	}

	f.res, f.err = res, err
	close(f.done)
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()

	if err != nil {
		s.metrics.simFailures.Inc()
		return cellResultInternal{key: keyHex, err: err}
	}
	s.cache.Put(key, res)
	s.storePut(key, res)
	return cellResultInternal{key: keyHex, res: res, counters: counters}
}

// simulate runs the cell on its engine under the job's guard. When the
// job has a live SSE subscriber and sample streaming is configured, a
// Sampler rides along and its windows are published as "sample" events
// after the run (zero cost for unwatched jobs: the probe is nil and the
// engines skip every hook).
func (s *Server) simulate(j *job, c cellSpec, cell int, tr *trace.Trace, pl *placement.Placement, cfg sim.Config) (*sim.Result, *obs.Counter, error) {
	guard := sim.Guard{MaxSteps: s.opts.MaxSteps, Cancel: &j.cancel}
	var timer *time.Timer
	if s.opts.RequestTimeout > 0 {
		timer = time.AfterFunc(s.opts.RequestTimeout, func() { j.cancel.Store(true) })
	}
	var probe obs.Probe
	var counters *obs.Counter
	if c.counters {
		counters = &obs.Counter{}
		probe = counters
	}
	var sampler *obs.Sampler
	if s.bus != nil && s.opts.StreamWindow > 0 && s.bus.Subscribers(jobTopic(j.id)) > 0 {
		sampler = obs.NewSampler(s.opts.StreamWindow)
		probe = obs.Multi(probe, sampler)
	}

	// An ONLINE/… placement name carries the cell's online adaptive
	// configuration; a zero OnlineOptions makes the online entry points
	// delegate to the exact static paths, so one switch serves both.
	var online sim.OnlineOptions
	if spec, ok, perr := advise.ParseOnlineAlgorithm(pl.Algorithm); perr != nil {
		return nil, nil, perr
	} else if ok {
		var oerr error
		if online, oerr = spec.Options(); oerr != nil {
			return nil, nil, oerr
		}
	}

	s.metrics.simRuns.Inc()
	var res *sim.Result
	var err error
	switch c.engine {
	case EngineFast:
		res, err = sim.RunOnlineGuarded(tr, pl, cfg, sim.FastEngine, online, probe, guard)
	case EngineReference:
		res, err = sim.RunOnlineGuarded(tr, pl, cfg, sim.ReferenceEngine, online, probe, guard)
	default: // EngineGuarded
		res, err = s.guard.RunOnline(tr, pl, cfg, online, probe, guard)
	}
	if timer != nil {
		timer.Stop()
	}
	if s.bus != nil && sampler != nil && err == nil {
		for i, w := range sampler.Samples() {
			s.bus.Publish(jobTopic(j.id), "sample", SampleEvent{
				Job: j.id, Cell: cell, Window: uint64(i), Sample: w,
			})
		}
	}
	if err != nil {
		return nil, nil, err
	}
	return res, counters, nil
}

// Health assembles the /healthz view.
func (s *Server) Health() HealthResponse {
	s.mu.Lock()
	draining := s.draining
	inFlight := s.inFlight
	s.mu.Unlock()

	cs := s.cache.Stats()
	h := HealthResponse{
		Status:        "ok",
		Workers:       s.opts.Workers,
		QueueDepth:    s.queue.Depth(),
		QueueCapacity: s.opts.QueueDepth,
		InFlight:      inFlight,
		Degraded:      s.guard.Degraded(),
		Cache: CacheHealth{
			Entries: cs.Entries, Capacity: cs.Capacity,
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			HitRate: cs.HitRate(),
		},
		Jobs: JobsHealth{
			Accepted:  s.metrics.jobsAccepted.Value(),
			Completed: s.metrics.jobsCompleted.Value(),
			Failed:    s.metrics.jobsFailed.Value(),
			Retriable: s.metrics.jobsRetriable.Value(),
			Canceled:  s.metrics.jobsCanceled.Value(),
		},
	}
	if h.Degraded {
		h.Status = "degraded"
		if rep := s.guard.Report(); rep != nil {
			h.Divergence = rep.String()
		}
	}
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		h.Store = &StoreHealth{
			Entries:        ss.Entries,
			SealedSegments: ss.SealedSegments,
			Hits:           ss.Hits,
			Misses:         ss.Misses,
			Puts:           ss.Puts,
			Quarantined:    ss.Quarantined,
			HitRate:        ss.HitRate(),
		}
	}
	if s.opts.Webhooks != nil {
		ws := s.opts.Webhooks.Stats()
		h.Webhooks = &WebhookHealth{
			Pending:   ws.Pending,
			Delivered: ws.Delivered,
			Failed:    ws.Failed,
			Retries:   ws.Retries,
		}
	}
	if draining {
		h.Status = "draining"
	}
	return h
}

// SweepJobID derives the content-addressed ID of a sweep: the same sweep
// (params, dimensions, engine) always maps to the same ID, on this
// server, a restarted one, or a cluster coordinator — a drained client
// simply resubmits, and coordinator and worker agree on job identity.
func SweepJobID(params Params, req *SweepRequest, engine string) string {
	parts := make([]string, 0, 5+len(req.Apps)+len(req.Algorithms)+len(req.Procs))
	parts = append(parts,
		fmt.Sprintf("scale=%g", params.Scale),
		fmt.Sprintf("seed=%d", params.Seed),
		fmt.Sprintf("infinite=%t", req.Infinite),
		fmt.Sprintf("engine=%s", engine),
	)
	parts = append(parts, "apps")
	parts = append(parts, req.Apps...)
	parts = append(parts, "algs")
	parts = append(parts, req.Algorithms...)
	parts = append(parts, "procs")
	for _, p := range req.Procs {
		parts = append(parts, fmt.Sprintf("%d", p))
	}
	sum := rescache.SumStrings("mtserve-sweep-v1", parts...)
	return "sw-" + sum.String()[:16]
}

// sweepCells expands a sweep request into its deterministic cell order
// (apps outermost, procs innermost).
func sweepCells(req *SweepRequest, engine string) []cellSpec {
	cells := make([]cellSpec, 0, req.Cells())
	for _, app := range req.Apps {
		for _, alg := range req.Algorithms {
			for _, p := range req.Procs {
				cells = append(cells, cellSpec{
					app: app, algorithm: alg, procs: p,
					infinite: req.Infinite, engine: engine,
				})
			}
		}
	}
	return cells
}
