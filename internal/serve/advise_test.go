package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/advise"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestAdviseAppDifferential: the app-source advisor must answer exactly
// what the library's measurement + Recommend pipeline computes.
func TestAdviseAppDifferential(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	suite := libSuite()

	pair, _, err := suite.CoherenceMeasurement("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := suite.Trace("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := suite.Config("MP3D", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := advise.Recommend(pair, advise.Lengths(tr), 4, nil, cfg.MemLatency)
	if err != nil {
		t.Fatal(err)
	}

	req := AdviseRequest{Params: &testParams, App: "MP3D", Procs: 4}
	resp, body := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AdviseResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Measured {
		t.Error("app source did not report a measurement")
	}
	if ar.Threads != tr.NumThreads() {
		t.Errorf("threads %d, want %d", ar.Threads, tr.NumThreads())
	}
	if ar.Placement == nil || !reflect.DeepEqual(ar.Placement.Clusters, want.Placement.Clusters) {
		t.Errorf("recommended clusters differ from library Recommend")
	}
	if ar.ProposedCross != want.ProposedCross {
		t.Errorf("proposed cross %d, want %d", ar.ProposedCross, want.ProposedCross)
	}

	// With the LOAD-BAL placement as the baseline, the advisor predicts
	// the savings the COHERENCE clustering would buy.
	seed, err := suite.Place("MP3D", "LOAD-BAL", 4)
	if err != nil {
		t.Fatal(err)
	}
	req.Current = &PlacementSpec{Algorithm: seed.Algorithm, Clusters: seed.Clusters}
	wantCur, err := advise.Recommend(pair, advise.Lengths(tr), 4, seed, cfg.MemLatency)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ar = AdviseResponse{}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.CurrentCross != wantCur.CurrentCross || ar.PredictedSavings != wantCur.PredictedSavings {
		t.Errorf("savings (%d, %d), want (%d, %d)",
			ar.CurrentCross, ar.PredictedSavings, wantCur.CurrentCross, wantCur.PredictedSavings)
	}
}

// TestAdviseTraceSource: posting an observed MTT2 trace yields the same
// recommendation as measuring that trace directly.
func TestAdviseTraceSource(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	tr := trace.New("observed", 4)
	for i := 0; i < 4; i++ {
		r := trace.NewRecorder(tr, i)
		line := trace.SharedBase + uint64(i%2)*64*trace.WordSize
		for j := 0; j < 200; j++ {
			r.Compute(2)
			r.Store(line)
		}
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(tr.NumThreads())
	pair, _, err := advise.MeasurePairTraffic(tr, cfg, sim.FastEngine)
	if err != nil {
		t.Fatal(err)
	}
	want, err := advise.Recommend(pair, advise.Lengths(tr), 2, nil, cfg.MemLatency)
	if err != nil {
		t.Fatal(err)
	}

	req := AdviseRequest{TraceMTT2: buf.Bytes(), Procs: 2}
	resp, body := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AdviseResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Measured || !reflect.DeepEqual(ar.Placement.Clusters, want.Placement.Clusters) {
		t.Errorf("trace-source recommendation differs from direct measurement")
	}
}

// TestAdvisePairSource: a pre-measured matrix is clustered as given, with
// savings predicted against the supplied current placement.
func TestAdvisePairSource(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := AdviseRequest{
		Pair: [][]uint64{
			{0, 0, 500, 0},
			{0, 0, 0, 500},
			{500, 0, 0, 0},
			{0, 500, 0, 0},
		},
		Lengths:    []uint64{10, 10, 10, 10},
		Procs:      2,
		Current:    &PlacementSpec{Algorithm: "SEED", Clusters: [][]int{{0, 1}, {2, 3}}},
		MemLatency: 30,
	}
	resp, body := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AdviseResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Measured {
		t.Error("pair source reported a measurement")
	}
	// The seed splits both hot pairs: 4x500 cross. The recommendation
	// co-locates them: zero cross, savings 2000*30.
	if ar.CurrentCross != 2000 || ar.ProposedCross != 0 || ar.PredictedSavings != 60000 {
		t.Errorf("accounting (%d, %d, %d), want (2000, 0, 60000)",
			ar.CurrentCross, ar.ProposedCross, ar.PredictedSavings)
	}
}

// TestAdviseValidationRejects: malformed advise bodies answer 400.
func TestAdviseValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := []string{
		``,
		`{}`,                            // no source
		`{"procs":2}`,                   // no source
		`{"app":"MP3D"}`,                // no procs
		`{"app":"NoSuchApp","procs":2}`, // unknown app
		`{"app":"MP3D","procs":0}`,      // procs under range
		`{"app":"MP3D","procs":100000}`, // procs over range
		`{"app":"MP3D","procs":2,"engine":"warp"}`,
		`{"app":"MP3D","procs":2,"pair":[[0]],"lengths":[1]}`, // two sources
		`{"pair":[[0,1]],"lengths":[1],"procs":2}`,            // ragged matrix
		`{"pair":[[0,1],[1,0]],"lengths":[1],"procs":2}`,      // lengths mismatch
		`{"app":"MP3D","procs":2,"lengths":[1]}`,              // lengths without pair
		`{"app":"MP3D","procs":2,"current":{"algorithm":"X","clusters":[]}}`,
		`{"app":"MP3D","procs":2,"x":1}`, // unknown field
		`{"trace_mtt2":"bm90IGEgdHJhY2U=","procs":2,"trailing":1}`,
	}
	for _, b := range bad {
		resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorResponse
		decErr := json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", b, resp.StatusCode)
		}
		if decErr != nil || er.Error == "" {
			t.Errorf("body %q: no JSON error message (%v)", b, decErr)
		}
	}

	// A syntactically valid request whose trace payload is garbage fails
	// at advise time: 422, not 400.
	resp, body := postJSON(t, ts.URL+"/v1/advise",
		AdviseRequest{TraceMTT2: []byte("not a trace"), Procs: 2})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("garbage trace: status %d, want 422: %s", resp.StatusCode, body)
	}
}

// TestSimulateOnlineAlgorithm: an ONLINE/… algorithm name runs the
// online engine over the API and reproduces the direct library run bit
// for bit, under the canonical name, with its own cache identity.
func TestSimulateOnlineAlgorithm(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	suite := libSuite()

	spec, ok, err := advise.ParseOnlineAlgorithm("ONLINE/COHERENCE@c=64,i=2000")
	if err != nil || !ok {
		t.Fatal(err)
	}
	tr, err := suite.Trace("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	seed, err := suite.Place("MP3D", spec.SeedAlgorithm(), 4)
	if err != nil {
		t.Fatal(err)
	}
	onl := *seed
	onl.Algorithm = spec.String()
	cfg, err := suite.Config("MP3D", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunOnlineGuarded(tr, &onl, cfg, sim.FastEngine, opts, nil, sim.Guard{})
	if err != nil {
		t.Fatal(err)
	}

	keys := map[string]bool{}
	// The non-canonical spelling and the canonical one are the same cell.
	for _, name := range []string{"ONLINE/COHERENCE@c=64,i=2000", spec.String()} {
		req := SimulateRequest{Params: &testParams, App: "MP3D", Algorithm: name, Procs: 4}
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
		var sr SimulateResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Result.Algorithm != spec.String() {
			t.Errorf("%s: result algorithm %q, want canonical %q", name, sr.Result.Algorithm, spec.String())
		}
		if sr.Result.Online == nil {
			t.Fatalf("%s: online run returned no Online stats", name)
		}
		if !reflect.DeepEqual(sr.Result, want) {
			t.Errorf("%s: API online result differs from direct library run", name)
		}
		keys[sr.Key] = true
	}
	if len(keys) != 1 {
		t.Errorf("canonical and non-canonical names got %d cache keys, want 1", len(keys))
	}

	// The static seed cell must have a different cache identity.
	req := SimulateRequest{Params: &testParams, App: "MP3D", Algorithm: spec.SeedAlgorithm(), Procs: 4}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("static seed: status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if keys[sr.Key] {
		t.Error("online cell shares its cache key with the static seed cell")
	}
	if sr.Result.Online != nil {
		t.Error("static cell carries Online stats")
	}

	// A malformed ONLINE name is rejected up front.
	req = SimulateRequest{Params: &testParams, App: "MP3D", Algorithm: "ONLINE/COHERENCE@i=0,c=1", Procs: 4}
	resp, body = postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed online name: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestSweepOnlineAlgorithm: ONLINE/… names sweep through the unchanged
// /v1/sweep machinery next to static algorithms.
func TestSweepOnlineAlgorithm(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := SweepRequest{
		Params:     &testParams,
		Apps:       []string{"Gauss"},
		Algorithms: []string{"LOAD-BAL", "ONLINE/HYST@i=2000,c=64"},
		Procs:      []int{2},
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, ts.URL, acc.Job)
	if st.Status != StatusDone {
		t.Fatalf("job ended %s: %s", st.Status, st.Error)
	}
	if len(st.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(st.Results))
	}
	static, online := st.Results[0], st.Results[1]
	if static.Result.Online != nil {
		t.Error("static sweep cell carries Online stats")
	}
	if online.Result.Online == nil {
		t.Error("online sweep cell has no Online stats")
	}
	if online.Result.Algorithm != "ONLINE/HYST@i=2000,c=64" {
		t.Errorf("online cell algorithm %q", online.Result.Algorithm)
	}
}
