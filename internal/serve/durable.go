package serve

// The durable tier glue: how the server speaks to the append-only
// result store (internal/store) and the retrying webhook dispatcher
// (internal/serve/webhook). Both are optional — a nil Options.Store or
// Options.Webhooks turns each path into a no-op — and both are owned
// by the caller (the daemon opens them before NewServer and closes
// them after Drain).

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/rescache"
	"repro/internal/sim"
	"repro/internal/store"
)

// storedCellVersion versions the store envelope; a decoder seeing a
// different version treats the record as a miss (recompute), never an
// error — old segments stay readable as "cold", not "corrupt".
const storedCellVersion = 1

// storedCell is the JSON envelope of one result in the durable store,
// keyed by the cell's rescache content address. Key repeats the
// address inside the payload so a record can never be served under the
// wrong identity even if an index pointed at the wrong bytes.
type storedCell struct {
	V      int             `json:"v"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// encodeStoredCell wraps an already-marshaled result for the store.
func encodeStoredCell(keyHex string, result any) ([]byte, error) {
	raw, err := json.Marshal(result)
	if err != nil {
		return nil, err
	}
	return json.Marshal(storedCell{V: storedCellVersion, Key: keyHex, Result: raw})
}

// decodeStoredCell unwraps a store payload, verifying version and key
// identity. dst receives the inner result.
func decodeStoredCell(keyHex string, payload []byte, dst any) error {
	var sc storedCell
	if err := json.Unmarshal(payload, &sc); err != nil {
		return err
	}
	if sc.V != storedCellVersion {
		return fmt.Errorf("stored cell version %d, want %d", sc.V, storedCellVersion)
	}
	if sc.Key != keyHex {
		return fmt.Errorf("stored cell key %s under address %s", sc.Key, keyHex)
	}
	return json.Unmarshal(sc.Result, dst)
}

// storeGet probes the durable tier for a cell result. Any damage —
// decode failure, version skew, key mismatch — is a miss, never an
// error: the caller recomputes, and the store's own CRC layer has
// already quarantined anything physically corrupt.
func (s *Server) storeGet(key rescache.Key, sctx obs.SpanContext) *sim.Result {
	if s.opts.Store == nil {
		return nil
	}
	lookupStart := time.Now()
	payload, ok := s.opts.Store.Get(store.Key(key))
	if s.spans != nil && sctx.Valid() {
		s.spans.AddSpan(sctx, s.opts.ServiceName, "store lookup", lookupStart, time.Now())
	}
	if !ok {
		return nil
	}
	var res sim.Result
	if err := decodeStoredCell(key.String(), payload, &res); err != nil {
		if s.opts.Log != nil {
			s.opts.Log.Warn("store record unusable, recomputing", "key", key.String(), "err", err.Error())
		}
		return nil
	}
	return &res
}

// storePut writes one fresh result behind the in-memory cache. Write
// failures are counted by the store and logged, never surfaced to the
// request — the store is a cache of deterministic computations.
func (s *Server) storePut(key rescache.Key, res *sim.Result) {
	if s.opts.Store == nil || res == nil {
		return
	}
	payload, err := encodeStoredCell(key.String(), res)
	if err != nil {
		if s.opts.Log != nil {
			s.opts.Log.Warn("store encode failed", "key", key.String(), "err", err.Error())
		}
		return
	}
	if err := s.opts.Store.Put(store.Key(key), payload); err != nil && s.opts.Log != nil {
		s.opts.Log.Warn("store put refused", "key", key.String(), "err", err.Error())
	}
}

// WebhookDeliveryID derives the content-addressed delivery ID for one
// (job, url, terminal status) triple. The same terminal transition
// re-announced — a restarted daemon re-walking its jobs, an identical
// sweep resubmitted after completion — maps to the same ID, which the
// dispatcher's journal deduplicates; receivers see each terminal state
// at most once per outcome.
func WebhookDeliveryID(jobID, url, status string) string {
	sum := rescache.SumStrings("mtsim-webhook-v1", jobID, url, status)
	return "wh-" + sum.String()[:16]
}

// notifyJob enqueues the terminal-state webhook for a job submitted
// with a webhook_url. The body is the JobEvent wire form — the same
// JSON an SSE subscriber would have received as the final event.
func (s *Server) notifyJob(j *job, st JobStatus) {
	if s.opts.Webhooks == nil || j.webhookURL == "" {
		return
	}
	body, err := json.Marshal(JobEventOf(st))
	if err != nil {
		return
	}
	id := WebhookDeliveryID(j.id, j.webhookURL, st.Status)
	if err := s.opts.Webhooks.Enqueue(id, j.webhookURL, body); err != nil && s.opts.Log != nil {
		s.opts.Log.Warn("webhook enqueue failed", "job", j.id, "err", err.Error())
	}
}

// syncDurableCounters mirrors the store's and dispatcher's own counters
// into /metrics at scrape time (they count authoritatively; metrics are
// a projection, the same contract as the result cache).
func (s *Server) syncDurableCounters() {
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		s.metrics.storeHits.Set(int64(ss.Hits))
		s.metrics.storeMisses.Set(int64(ss.Misses))
		s.metrics.storePuts.Set(int64(ss.Puts))
		s.metrics.storeQuarantined.Set(int64(ss.Quarantined))
		s.metrics.storeSegments.Set(int64(ss.SealedSegments))
	}
	if s.opts.Webhooks != nil {
		ws := s.opts.Webhooks.Stats()
		s.metrics.webhookPending.Set(int64(ws.Pending))
		s.metrics.webhookDelivered.Set(int64(ws.Delivered))
		s.metrics.webhookFailed.Set(int64(ws.Failed))
		s.metrics.webhookRetries.Set(int64(ws.Retries))
	}
}
