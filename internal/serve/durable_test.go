package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve/webhook"
	"repro/internal/store"
)

// sweepBody is the standard small sweep the durable tests submit.
func sweepBody(webhookURL string) *SweepRequest {
	return &SweepRequest{
		Params:     &testParams,
		Apps:       []string{"MP3D"},
		Algorithms: []string{"RANDOM", "SHARE-REFS"},
		Procs:      []int{4},
		WebhookURL: webhookURL,
	}
}

// submitAndWait posts a sweep and polls it to a terminal state.
func submitAndWait(t *testing.T, base string, req *SweepRequest) JobStatus {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, data)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	return pollJob(t, base, acc.Job)
}

// TestStoreTierWarmRestart is the tentpole contract end to end: results
// computed in one server life are served from disk in the next —
// byte-identical, marked cached, with zero fresh simulations.
func TestStoreTierWarmRestart(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Options{Workers: 2, Store: st1})
	first := submitAndWait(t, ts1.URL, sweepBody(""))
	if first.Status != StatusDone {
		t.Fatalf("first life: %+v", first)
	}
	ts1.Close()
	s1.Drain()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh server, fresh memory cache, same store dir.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if st2.Len() == 0 {
		t.Fatal("store empty after restart; nothing persisted")
	}
	s2, ts2 := newTestServer(t, Options{Workers: 2, Store: st2})
	second := submitAndWait(t, ts2.URL, sweepBody(""))
	if second.Status != StatusDone {
		t.Fatalf("second life: %+v", second)
	}

	if len(first.Results) != len(second.Results) {
		t.Fatalf("cell counts differ: %d vs %d", len(first.Results), len(second.Results))
	}
	for i := range second.Results {
		if !second.Results[i].Cached {
			t.Errorf("cell %d not served from the store after restart", i)
		}
		if second.Results[i].Key != first.Results[i].Key {
			t.Errorf("cell %d key drifted: %s vs %s", i, first.Results[i].Key, second.Results[i].Key)
		}
		if !reflect.DeepEqual(first.Results[i].Result, second.Results[i].Result) {
			t.Errorf("cell %d result differs across restart", i)
		}
	}
	if runs := s2.metrics.simRuns.Value(); runs != 0 {
		t.Errorf("second life simulated %d cells; want 0 (all from store)", runs)
	}
	if ss := st2.Stats(); ss.Hits == 0 {
		t.Errorf("store hits = 0 after warm restart: %+v", ss)
	}
}

// TestStoredCellEnvelopeRejectsMismatches: version skew and key
// mismatch are both misses (recompute), surfaced as decode errors.
func TestStoredCellEnvelopeRejectsMismatches(t *testing.T) {
	payload, err := encodeStoredCell("aabb", map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	var dst map[string]int
	if err := decodeStoredCell("aabb", payload, &dst); err != nil || dst["x"] != 1 {
		t.Fatalf("round trip: %v, %v", dst, err)
	}
	if err := decodeStoredCell("ccdd", payload, &dst); err == nil {
		t.Fatal("key mismatch accepted")
	}
	skewed, _ := json.Marshal(storedCell{V: storedCellVersion + 1, Key: "aabb"})
	if err := decodeStoredCell("aabb", skewed, &dst); err == nil {
		t.Fatal("version skew accepted")
	}
	if err := decodeStoredCell("aabb", []byte("{garbage"), &dst); err == nil {
		t.Fatal("malformed payload accepted")
	}
}

// TestWebhookDeliveredOnCompletion: a sweep submitted with webhook_url
// gets exactly one terminal POST carrying the job's final JobEvent.
func TestWebhookDeliveredOnCompletion(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	var ids []string
	rc := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(body))
		ids = append(ids, r.Header.Get(webhook.DeliveryHeader))
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer rc.Close()

	wh, err := webhook.New(webhook.Options{JournalPath: filepath.Join(t.TempDir(), "wh.mtj")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	_, whts := newTestServer(t, Options{Workers: 2, Webhooks: wh})

	st := submitAndWait(t, whts.URL, sweepBody(rc.URL))
	if st.Status != StatusDone {
		t.Fatalf("sweep: %+v", st)
	}
	if !wh.Flush(5 * time.Second) {
		t.Fatal("webhook delivery did not complete")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 {
		t.Fatalf("receiver saw %d deliveries, want 1: %q", len(bodies), bodies)
	}
	var ev JobEvent
	if err := json.Unmarshal([]byte(bodies[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Job != st.Job || ev.Status != StatusDone || ev.Completed != st.Cells {
		t.Fatalf("webhook body = %+v, want terminal snapshot of %s", ev, st.Job)
	}
	want := WebhookDeliveryID(st.Job, rc.URL, StatusDone)
	if ids[0] != want {
		t.Fatalf("delivery header = %q, want %q", ids[0], want)
	}
}

// TestWebhookURLValidation: the sweep decoder is the gate.
func TestWebhookURLValidation(t *testing.T) {
	base := sweepBody("")
	for _, tc := range []struct {
		url string
		ok  bool
	}{
		{"", true},
		{"http://example.com/hook", true},
		{"https://example.com/hook", true},
		{"ftp://example.com/hook", false},
		{"example.com/hook", false}, // no scheme
		{"http://", false},          // no host
		{"http://h/" + strings.Repeat("a", MaxWebhookURLLen), false},
	} {
		req := *base
		req.WebhookURL = tc.url
		err := req.Validate()
		if tc.ok && err != nil {
			t.Errorf("webhook_url %q rejected: %v", tc.url, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("webhook_url %q accepted", tc.url)
		}
	}
}

// TestHealthReportsDurableTiers: /healthz grows store and webhook
// blocks exactly when the tiers are attached.
func TestHealthReportsDurableTiers(t *testing.T) {
	_, bare := newTestServer(t, Options{Workers: 1})
	var h HealthResponse
	getJSON(t, bare.URL+"/healthz", &h)
	if h.Store != nil || h.Webhooks != nil {
		t.Fatalf("bare server reports durable tiers: %+v", h)
	}

	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	wh, err := webhook.New(webhook.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	_, ts := newTestServer(t, Options{Workers: 1, Store: st, Webhooks: wh})
	submitAndWait(t, ts.URL, sweepBody(""))
	var h2 HealthResponse
	getJSON(t, ts.URL+"/healthz", &h2)
	if h2.Store == nil || h2.Webhooks == nil {
		t.Fatalf("durable tiers missing from health: %+v", h2)
	}
	if h2.Store.Puts == 0 {
		t.Errorf("store puts = 0 after a completed sweep: %+v", h2.Store)
	}
}
