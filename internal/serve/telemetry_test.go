package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// ---- SSE plumbing --------------------------------------------------------

// sseEvent is one parsed text/event-stream record.
type sseEvent struct {
	kind string
	data []byte
}

// openSSE attaches to an event-stream URL and returns a channel of parsed
// events. The channel closes when the stream ends; cancel tears it down.
func openSSE(t *testing.T, url string) (<-chan sseEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("events stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		cancel()
		t.Fatalf("events stream: content type %q", ct)
	}
	ch := make(chan sseEvent, 1024)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.kind != "" {
					ch <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, "event: "):
				ev.kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = []byte(strings.TrimPrefix(line, "data: "))
			}
		}
	}()
	return ch, cancel
}

// ---- tests ---------------------------------------------------------------

// TestJobEventsSSEDifferential: a live stream on a running sweep must
// deliver cell completions and end with the job's terminal state — with
// no polling — and that terminal event must agree with what a poll of
// GET /v1/jobs/{id} reports afterwards.
func TestJobEventsSSEDifferential(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 2,
		// Slow cells down so the stream reliably attaches mid-sweep.
		BeforeCell: func() { time.Sleep(20 * time.Millisecond) },
	})

	req := SweepRequest{
		Params: &testParams,
		Apps:   []string{"MP3D", "Gauss"}, Algorithms: []string{"RANDOM", "LOAD-BAL"},
		Procs: []int{2, 4},
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Trace == "" {
		t.Fatal("sweep accepted without a trace ID")
	}

	events, cancel := openSSE(t, ts.URL+"/v1/jobs/"+acc.Job+"/events")
	defer cancel()

	// Consume the stream to its natural end: the handler closes it after
	// writing a terminal "job" event. No status polling anywhere.
	var (
		terminal  *JobEvent
		cellSeen  = map[int]bool{}
		cellCount int
	)
	for ev := range events {
		switch ev.kind {
		case "job":
			var je JobEvent
			if err := json.Unmarshal(ev.data, &je); err != nil {
				t.Fatalf("bad job event %s: %v", ev.data, err)
			}
			if je.Job != acc.Job {
				t.Fatalf("job event for %q on stream of %q", je.Job, acc.Job)
			}
			if TerminalStatus(je.Status) {
				terminal = &je
			}
		case "cell":
			var ce CellEvent
			if err := json.Unmarshal(ev.data, &ce); err != nil {
				t.Fatalf("bad cell event %s: %v", ev.data, err)
			}
			if ce.Cell < 0 || ce.Cell >= acc.Cells {
				t.Errorf("cell event index %d out of range [0,%d)", ce.Cell, acc.Cells)
			}
			if cellSeen[ce.Cell] {
				t.Errorf("cell %d reported twice", ce.Cell)
			}
			cellSeen[ce.Cell] = true
			cellCount++
			if ce.State != "done" {
				t.Errorf("cell %d ended %q: %s", ce.Cell, ce.State, ce.Error)
			}
		}
	}
	if terminal == nil {
		t.Fatal("stream closed without a terminal job event")
	}
	if terminal.Status != StatusDone {
		t.Fatalf("terminal status %q: %s", terminal.Status, terminal.Error)
	}
	if terminal.Completed != acc.Cells {
		t.Errorf("terminal event reports %d/%d cells", terminal.Completed, acc.Cells)
	}
	if cellCount == 0 {
		t.Error("stream delivered no cell events while the sweep ran")
	}

	// Differential: the poll endpoint must agree with the stream's end.
	st := pollJob(t, ts.URL, acc.Job)
	if st.Status != terminal.Status || st.Completed != terminal.Completed {
		t.Errorf("poll (%s, %d cells) disagrees with stream terminal (%s, %d cells)",
			st.Status, st.Completed, terminal.Status, terminal.Completed)
	}
}

// TestJobEventsTerminalWithoutBus: with telemetry disabled there is no
// bus at all, yet a stream must still open, deliver the snapshot, and
// end with the terminal state off the job's done channel.
func TestJobEventsTerminalWithoutBus(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:          2,
		DisableTelemetry: true,
		BeforeCell:       func() { time.Sleep(10 * time.Millisecond) },
	})
	req := SweepRequest{
		Params: &testParams,
		Apps:   []string{"MP3D"}, Algorithms: []string{"RANDOM"}, Procs: []int{2, 4},
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Trace != "" {
		t.Errorf("telemetry disabled but sweep minted trace %q", acc.Trace)
	}

	events, cancel := openSSE(t, ts.URL+"/v1/jobs/"+acc.Job+"/events")
	defer cancel()
	var last JobEvent
	for ev := range events {
		if ev.kind != "job" {
			t.Errorf("unexpected %q event with telemetry disabled", ev.kind)
			continue
		}
		if err := json.Unmarshal(ev.data, &last); err != nil {
			t.Fatal(err)
		}
	}
	if !TerminalStatus(last.Status) {
		t.Fatalf("stream ended on non-terminal status %q", last.Status)
	}
	if last.Status != StatusDone {
		t.Fatalf("terminal status %q: %s", last.Status, last.Error)
	}
}

// TestTraceEndpoint: a simulate request joins the caller's trace context,
// the job's spans land under it, and GET /v1/trace exports them — raw
// and as Perfetto trace-event JSON.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// A caller-minted context: the server must join it, not mint its own.
	parent := obs.NewTrace()
	b, _ := json.Marshal(SimulateRequest{
		Params: &testParams, App: "MP3D", Algorithm: "RANDOM", Procs: 2,
	})
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(obs.TraceHeader, parent.HeaderValue())
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	var sr SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trace != parent.Trace {
		t.Fatalf("response trace %q, want caller's %q", sr.Trace, parent.Trace)
	}
	echoed, ok := obs.ParseTrace(resp.Header.Get(obs.TraceHeader))
	if !ok || echoed.Trace != parent.Trace {
		t.Errorf("response header %q does not carry trace %q",
			resp.Header.Get(obs.TraceHeader), parent.Trace)
	}

	// Raw span export: every span in the trace, request span parented on
	// the caller's context, and the expected pipeline stages present.
	var tsp TraceSpans
	if r := getJSON(t, ts.URL+"/v1/trace/"+parent.Trace+"?format=spans", &tsp); r.StatusCode != http.StatusOK {
		t.Fatalf("trace export: status %d", r.StatusCode)
	}
	if len(tsp.Spans) == 0 {
		t.Fatal("trace export returned no spans")
	}
	names := map[string]bool{}
	var root *obs.Span
	for i, sp := range tsp.Spans {
		if sp.Trace != parent.Trace {
			t.Errorf("span %q carries trace %q, want %q", sp.Name, sp.Trace, parent.Trace)
		}
		if sp.Service != "mtserve" {
			t.Errorf("span %q carries service %q, want mtserve", sp.Name, sp.Service)
		}
		names[sp.Name] = true
		if strings.HasPrefix(sp.Name, "simulate ") {
			root = &tsp.Spans[i]
		}
	}
	if root == nil {
		t.Fatal("no simulate root span in trace")
	}
	if root.Parent != parent.Span {
		t.Errorf("request span parent %q, want caller span %q", root.Parent, parent.Span)
	}
	for _, want := range []string{"queue wait", "cell MP3D/RANDOM/p2", "engine guarded", "cache lookup"} {
		if !names[want] {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}

	// Perfetto export: valid trace-event JSON, one process row, every
	// span an event.
	var pf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if r := getJSON(t, ts.URL+"/v1/trace/"+parent.Trace, &pf); r.StatusCode != http.StatusOK {
		t.Fatalf("perfetto export: status %d", r.StatusCode)
	}
	if pf.OtherData["trace_id"] != parent.Trace {
		t.Errorf("perfetto trace_id %v, want %q", pf.OtherData["trace_id"], parent.Trace)
	}
	var spans int
	for _, ev := range pf.TraceEvents {
		if ev.Ph == "X" || ev.Ph == "i" {
			spans++
		}
	}
	if spans != len(tsp.Spans) {
		t.Errorf("perfetto export has %d span events, raw export %d spans", spans, len(tsp.Spans))
	}

	// Unknown traces and disabled telemetry both answer 404.
	if r := getJSON(t, ts.URL+"/v1/trace/0000000000000000", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", r.StatusCode)
	}
	_, off := newTestServer(t, Options{Workers: 1, DisableTelemetry: true})
	if r := getJSON(t, off.URL+"/v1/trace/"+parent.Trace, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("telemetry disabled: trace status %d, want 404", r.StatusCode)
	}
}
