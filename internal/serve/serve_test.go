package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testParams keeps serve tests fast: quarter-scale traces, fixed seed.
var testParams = Params{Scale: 0.25, Seed: 1994}

// newTestServer starts a Server plus its HTTP front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// libSuite builds the library-side ground truth for testParams.
func libSuite() *core.Suite {
	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: testParams.Scale, Seed: testParams.Seed}
	return core.NewSuite(opts)
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestSimulateDifferential: every API cell result must be deeply equal to
// the corresponding direct library call — the server adds transport,
// queueing and caching, never arithmetic. A second pass over the same
// cells must come from the cache, still identical.
func TestSimulateDifferential(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	suite := libSuite()

	type cell struct {
		app, alg string
		procs    int
	}
	cells := []cell{
		{"MP3D", "SHARE-REFS", 2},
		{"MP3D", "RANDOM", 4},
		{"MP3D", "LOAD-BAL", 4},
		{"Gauss", "MIN-INVS", 2},
	}
	for pass := 0; pass < 2; pass++ {
		for _, c := range cells {
			req := SimulateRequest{
				Params:    &testParams,
				App:       c.app,
				Algorithm: c.alg,
				Procs:     c.procs,
			}
			resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("pass %d %v: status %d: %s", pass, c, resp.StatusCode, body)
			}
			var sr SimulateResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			want, err := suite.RunOne(c.app, c.alg, c.procs, false)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sr.Result, want) {
				t.Errorf("pass %d %v: API result differs from library result", pass, c)
			}
			if pass == 1 && !sr.Cached {
				t.Errorf("second pass %v not served from cache", c)
			}
			if len(sr.Key) != 64 {
				t.Errorf("key %q is not a sha256 hex string", sr.Key)
			}
		}
	}
}

// TestSimulateEnginesAgree: fast, reference and guarded engines answer
// with identical results over the API (distinct cache keys, same data).
func TestSimulateEnginesAgree(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var results []*sim.Result
	keys := map[string]string{}
	for _, eng := range Engines() {
		req := SimulateRequest{
			Params: &testParams, App: "MP3D", Algorithm: "SHARE-REFS",
			Procs: 2, Engine: eng,
		}
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", eng, resp.StatusCode, body)
		}
		var sr SimulateResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Engine != eng {
			t.Errorf("engine echoed %q, want %q", sr.Engine, eng)
		}
		if prev, ok := keys[sr.Key]; ok {
			t.Errorf("engines %s and %s share cache key %s", prev, eng, sr.Key)
		}
		keys[sr.Key] = eng
		results = append(results, sr.Result)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("engine %s result differs from %s", Engines()[i], Engines()[0])
		}
	}
}

// TestSimulateExplicitPlacementAndConfig: the explicit-cell mode (used by
// experiments -remote) must reproduce a direct sim.Run bit for bit.
func TestSimulateExplicitPlacementAndConfig(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	suite := libSuite()
	tr, err := suite.Trace("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := suite.Place("MP3D", "SHARE-ADDR", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := suite.Config("MP3D", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Associativity = 2 // an ablation config no named cell reaches
	want, err := sim.Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	spec := ConfigSpecOf(cfg)
	req := SimulateRequest{
		Params: &testParams,
		App:    "MP3D",
		Placement: &PlacementSpec{
			Algorithm: pl.Algorithm,
			Clusters:  pl.Clusters,
		},
		Config: &spec,
		Engine: EngineFast,
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr.Result, want) {
		t.Error("explicit placement+config result differs from direct sim.Run")
	}
}

// TestSweepDifferential: a sweep's cells, retrieved by polling the job,
// must equal the library's results cell by cell; resubmitting the
// identical sweep must return the same content-addressed job.
func TestSweepDifferential(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	suite := libSuite()

	req := SweepRequest{
		Params:     &testParams,
		Apps:       []string{"MP3D"},
		Algorithms: []string{"SHARE-REFS", "RANDOM"},
		Procs:      []int{2, 4},
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Cells != 4 {
		t.Fatalf("accepted %d cells, want 4", acc.Cells)
	}
	if !strings.HasPrefix(acc.Job, "sw-") {
		t.Fatalf("job id %q missing sw- prefix", acc.Job)
	}

	st := pollJob(t, ts.URL, acc.Job)
	if st.Status != StatusDone {
		t.Fatalf("job ended %s: %s", st.Status, st.Error)
	}
	if len(st.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(st.Results))
	}
	i := 0
	for _, alg := range req.Algorithms {
		for _, procs := range req.Procs {
			cr := st.Results[i]
			if cr.App != "MP3D" || cr.Algorithm != alg || cr.Procs != procs {
				t.Fatalf("cell %d order mismatch: %s/%s/%d", i, cr.App, cr.Algorithm, cr.Procs)
			}
			want, err := suite.RunOne("MP3D", alg, procs, false)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cr.Result, want) {
				t.Errorf("cell %s/%d differs from library result", alg, procs)
			}
			i++
		}
	}

	// Identical resubmission: same ID, existing record, no re-simulation.
	resp, body = postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status %d: %s", resp.StatusCode, body)
	}
	var acc2 SweepAccepted
	if err := json.Unmarshal(body, &acc2); err != nil {
		t.Fatal(err)
	}
	if acc2.Job != acc.Job {
		t.Errorf("resubmitted sweep got job %s, want %s", acc2.Job, acc.Job)
	}
	if !acc2.Existing {
		t.Error("resubmitted sweep not reported as existing")
	}
}

func pollJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st JobStatus
		resp := getJSON(t, base+"/v1/jobs/"+id, &st)
		switch st.Status {
		case StatusDone, StatusFailed, StatusRetriable, StatusCanceled:
			return st
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestValidationRejects: malformed or out-of-bounds requests answer 400
// with a JSON error, never a panic or an enqueue.
func TestValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := []string{
		``,
		`{`,
		`{"app":"MP3D"}`, // no algorithm or placement
		`{"app":"NoSuchApp","algorithm":"RANDOM","procs":2}`,  // unknown app
		`{"app":"MP3D","algorithm":"NOPE","procs":2}`,         // unknown algorithm
		`{"app":"MP3D","algorithm":"RANDOM","procs":0}`,       // procs under range
		`{"app":"MP3D","algorithm":"RANDOM","procs":100000}`,  // procs over range
		`{"app":"MP3D","algorithm":"RANDOM","procs":2,"x":1}`, // unknown field
		`{"app":"MP3D","algorithm":"RANDOM","procs":2} trail`, // trailing data
		`{"app":"MP3D","algorithm":"RANDOM","procs":2,"engine":"warp"}`,
		`{"app":"MP3D","algorithm":"RANDOM","procs":2,"params":{"scale":-1}}`,
		`{"app":"MP3D","placement":{"algorithm":"X","clusters":[]}}`,
		`{"app":"MP3D","algorithm":"RANDOM","placement":{"algorithm":"X","clusters":[[0]]},"procs":2}`,
	}
	for _, b := range bad {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorResponse
		dec := json.NewDecoder(resp.Body)
		decErr := dec.Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", b, resp.StatusCode)
		}
		if decErr != nil || er.Error == "" {
			t.Errorf("body %q: no JSON error message (%v)", b, decErr)
		}
	}

	badSweeps := []string{
		`{"apps":[],"algorithms":["RANDOM"],"procs":[2]}`,
		fmt.Sprintf(`{"apps":["MP3D"],"algorithms":["RANDOM"],"procs":[%s2]}`,
			strings.Repeat("2,", MaxSweepList)),
	}
	for _, b := range badSweeps {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sweep body %q: status %d, want 400", b, resp.StatusCode)
		}
	}
}

// TestOversizedRequestRejected: a body over MaxRequestBytes answers 400
// without buffering it.
func TestOversizedRequestRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	huge := `{"app":"` + strings.Repeat("a", MaxRequestBytes) + `"}`
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(huge))
	if err != nil {
		// The server may abort the connection mid-upload once the limit
		// trips; that is also a rejection.
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

// TestQueueFullBackpressure: with workers gated and a tiny queue, surplus
// requests answer 429 with Retry-After instead of buffering unboundedly.
func TestQueueFullBackpressure(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 2})
	s.cellStarted = make(chan string, 16)
	s.cellGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		close(s.cellGate)
		ts.Close()
		s.Drain()
	}()

	// One cell occupies the worker (blocked on the gate), two fill the
	// queue; the fourth must bounce.
	req := SweepRequest{
		Params: &testParams, Apps: []string{"MP3D"},
		Algorithms: []string{"SHARE-REFS"}, Procs: []int{2},
	}
	launch := func(alg string) (*http.Response, []byte) {
		r := req
		r.Algorithms = []string{alg}
		return postJSON(t, ts.URL+"/v1/sweep", r)
	}
	if resp, body := launch("SHARE-REFS"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep: %d %s", resp.StatusCode, body)
	}
	<-s.cellStarted // worker busy, queue empty
	if resp, body := launch("SHARE-ADDR"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second sweep: %d %s", resp.StatusCode, body)
	}
	if resp, body := launch("MIN-PRIV"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("third sweep: %d %s", resp.StatusCode, body)
	}
	resp, body := launch("MIN-INVS")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fourth sweep: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !er.Retriable {
		t.Errorf("429 body not a retriable error: %s", body)
	}
}

// TestDrainMarksQueuedRetriable is the kill-and-resume smoke test: a
// drain mid-sweep finishes the in-flight cell, marks the rest of the job
// retriable, and a fresh server given the identical sweep reproduces the
// full, library-equal results under the same content-addressed job ID.
func TestDrainMarksQueuedRetriable(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 64})
	s.cellStarted = make(chan string, 16)
	s.cellGate = make(chan struct{}, 16)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SweepRequest{
		Params: &testParams, Apps: []string{"MP3D"},
		Algorithms: []string{"SHARE-REFS", "RANDOM"}, Procs: []int{2, 4},
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	// Freeze the worker inside cell 0, then pull the plug.
	<-s.cellStarted
	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Wait until Drain has emptied the queue (the three cells behind the
	// frozen one) before releasing the worker, so exactly one cell is
	// in-flight at drain time — deterministically.
	for s.queue.Depth() != 0 {
		time.Sleep(time.Millisecond)
	}
	s.cellGate <- struct{}{}
	<-drained

	var st JobStatus
	jresp := getJSON(t, ts.URL+"/v1/jobs/"+acc.Job, &st)
	if st.Status != StatusRetriable {
		t.Fatalf("drained job status %s, want retriable", st.Status)
	}
	if jresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("retriable job answered %d, want 503", jresp.StatusCode)
	}
	if st.Completed != 1 {
		t.Errorf("in-flight cell count = %d completed, want exactly 1", st.Completed)
	}
	// Accounting: the accepted job is accounted retriable, not lost.
	h := s.Health()
	if h.Status != "draining" {
		t.Errorf("health after drain = %s, want draining", h.Status)
	}
	if h.Jobs.Accepted != 1 || h.Jobs.Retriable != 1 {
		t.Errorf("job accounting = %+v, want 1 accepted / 1 retriable", h.Jobs)
	}

	// New work is refused while draining.
	resp, body = postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("sweep while draining: %d %s, want 503", resp.StatusCode, body)
	}

	// "Restart": a fresh server, identical sweep → identical job ID,
	// full results, equal to the library's.
	_, ts2 := newTestServer(t, Options{Workers: 2})
	resp, body = postJSON(t, ts2.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var acc2 SweepAccepted
	if err := json.Unmarshal(body, &acc2); err != nil {
		t.Fatal(err)
	}
	if acc2.Job != acc.Job {
		t.Fatalf("restarted server derived job %s, want %s", acc2.Job, acc.Job)
	}
	st2 := pollJob(t, ts2.URL, acc2.Job)
	if st2.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s: %s", st2.Status, st2.Error)
	}
	suite := libSuite()
	for _, cr := range st2.Results {
		want, err := suite.RunOne(cr.App, cr.Algorithm, cr.Procs, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cr.Result, want) {
			t.Errorf("cell %s/%s/%d differs from library after restart", cr.App, cr.Algorithm, cr.Procs)
		}
	}
}

// TestHealthAndMetricsEndpoints: /healthz and /metrics surface queue,
// cache and job state with the documented shapes.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3})

	var h HealthResponse
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, h.Status)
	}
	if h.Workers != 3 {
		t.Errorf("healthz workers = %d, want 3", h.Workers)
	}

	// One simulation, then the counters must move.
	req := SimulateRequest{Params: &testParams, App: "MP3D", Algorithm: "RANDOM", Procs: 2}
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"serve_http_requests_total",
		"serve_sim_runs_total 1",
		"serve_cache_misses_total 1",
		"serve_jobs_completed_total 1",
		"serve_workers 3",
		"# TYPE serve_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	var pl PlacementsResponse
	if resp := getJSON(t, ts.URL+"/v1/placements", &pl); resp.StatusCode != http.StatusOK {
		t.Fatalf("placements: %d", resp.StatusCode)
	}
	if len(pl.Apps) == 0 || len(pl.Algorithms) == 0 || len(pl.Engines) != 3 {
		t.Errorf("placements catalog incomplete: %+v", pl)
	}

	if resp := getJSON(t, ts.URL+"/v1/jobs/sw-doesnotexist0000", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestCountersOnRequest: "counters": true attaches a request-scoped probe
// whose totals match the result's aggregate miss counts.
func TestCountersOnRequest(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := SimulateRequest{
		Params: &testParams, App: "MP3D", Algorithm: "SHARE-REFS",
		Procs: 2, Counters: true,
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Counters == nil {
		t.Fatal("no counters in response despite counters:true")
	}
	if sr.Counters.Runs != 1 {
		t.Errorf("probe runs = %d, want 1", sr.Counters.Runs)
	}
	if sr.Counters.ExecTime != sr.Result.ExecTime {
		t.Errorf("probe exec time %d != result exec time %d", sr.Counters.ExecTime, sr.Result.ExecTime)
	}

	// Cache hit: no simulation ran, so no counters travel.
	resp, body = postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate (cached): %d %s", resp.StatusCode, body)
	}
	var sr2 SimulateResponse
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Error("second identical request not cached")
	}
	if sr2.Counters != nil {
		t.Error("cache hit carried probe counters, but nothing ran")
	}
}

// TestStepBudgetAnswers504: a step budget too small for the cell answers
// 504 with a retriable BudgetError, not a hang or a 500.
func TestStepBudgetAnswers504(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxSteps: 10})
	req := SimulateRequest{Params: &testParams, App: "MP3D", Algorithm: "RANDOM", Procs: 2}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d %s, want 504", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "step budget") {
		t.Errorf("error %q does not mention the step budget", er.Error)
	}
}

// TestDegradedServerKeepsAnswering: a corrupted fast engine must bench
// itself on the first cross-checked cell; the server keeps serving
// correct (reference) results and reports degraded health.
func TestDegradedServerKeepsAnswering(t *testing.T) {
	prev := sim.SetFastEngineFault(func(r *sim.Result) { r.ExecTime += 7 })
	defer sim.SetFastEngineFault(prev)

	s, ts := newTestServer(t, Options{Workers: 1, SampleEvery: 1})
	suite := libSuite()
	req := SimulateRequest{Params: &testParams, App: "MP3D", Algorithm: "SHARE-REFS", Procs: 2}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded {
		t.Error("response does not flag degradation")
	}
	// The fault hook corrupts every fast-engine run in the process, so
	// ground truth here is the reference engine, which the guard fell
	// back to.
	tr, err := suite.Trace("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := suite.Place("MP3D", "SHARE-REFS", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := suite.Config("MP3D", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunGuarded(tr, pl, cfg, sim.ReferenceEngine, nil, sim.Guard{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr.Result, want) {
		t.Error("degraded server returned a wrong result")
	}
	if !s.Guard().Degraded() {
		t.Error("guard not degraded after divergence")
	}
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" || !h.Degraded || h.Divergence == "" {
		t.Errorf("healthz does not report degradation: %+v", h)
	}
}

// TestSingleFlight: concurrent identical misses share one simulation.
func TestSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4})
	req := SimulateRequest{Params: &testParams, App: "Gauss", Algorithm: "SHARE-REFS", Procs: 4}
	const n = 4
	errs := make(chan error, n)
	results := make(chan *SimulateResponse, n)
	for i := 0; i < n; i++ {
		go func() {
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var sr SimulateResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				errs <- err
				return
			}
			results <- &sr
		}()
	}
	var first *sim.Result
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case sr := <-results:
			if first == nil {
				first = sr.Result
			} else if !reflect.DeepEqual(first, sr.Result) {
				t.Error("concurrent identical requests returned different results")
			}
		}
	}
	if runs := s.Metrics().Snapshot()["serve_sim_runs_total"]; runs > 2 {
		// Timing may let a request hit the filled cache, but single-flight
		// must stop n identical concurrent misses from n simulations.
		// (>2 would mean dedup failed; typically this is exactly 1.)
		t.Errorf("sim runs = %d for %d identical concurrent requests", runs, n)
	}
}
