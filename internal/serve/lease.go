package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
)

// The lease protocol is the worker-side half of the cluster: a
// coordinator (cmd/mtcoord) grants a worker a lease — a batch of sweep
// cells — and the worker drains it through its ordinary queue, worker
// pool, result cache and engine guard, exactly like a locally submitted
// sweep. Three endpoints, all under /internal/v1 (cluster-internal, not
// part of the public API):
//
//	POST /internal/v1/lease             grant a lease (idempotent by ID)
//	GET  /internal/v1/lease/{id}        poll per-cell states and results
//	POST /internal/v1/lease/{id}/steal  reclaim not-yet-started cells
//
// Stealing is what lets an idle worker drain a straggler's tail: the
// coordinator reclaims pending cells from the back of a slow worker's
// lease and re-grants them elsewhere. A stolen cell never runs here, so
// no cell can produce two results inside one lease; across workers the
// simulator's determinism makes any re-execution byte-identical.

// MaxLeaseID caps the coordinator-chosen lease identifier.
const MaxLeaseID = MaxNameLen

// leaseJobPrefix namespaces lease jobs inside the job registry so a
// lease ID can never collide with a content-addressed sweep ID.
const leaseJobPrefix = "lease:"

// LeaseCell is one cell of a lease, in sweep terms (server-side
// placement algorithms only; explicit placements travel via
// /v1/simulate).
type LeaseCell struct {
	App       string `json:"app"`
	Algorithm string `json:"algorithm"`
	Procs     int    `json:"procs"`
}

// LeaseRequest is the POST /internal/v1/lease body.
type LeaseRequest struct {
	// Lease is the coordinator-chosen lease ID. Granting the same ID
	// twice is idempotent: the existing lease's status is returned and
	// nothing is re-enqueued (the coordinator retries over an unreliable
	// network).
	Lease    string      `json:"lease"`
	Params   *Params     `json:"params,omitempty"`
	Engine   string      `json:"engine,omitempty"`
	Infinite bool        `json:"infinite,omitempty"`
	Cells    []LeaseCell `json:"cells"`
	// Trace optionally carries the coordinator's span context in
	// Mtsim-Trace wire form ("<trace>-<span>"), so the worker's lease
	// spans join the sweep's distributed trace.
	Trace string `json:"trace,omitempty"`
}

// LeaseCellStatus is one cell's view inside a LeaseStatus poll. Result
// is attached as soon as the cell is done — the coordinator harvests
// incrementally, it does not wait for the whole lease.
type LeaseCellStatus struct {
	// State is pending, running, done, failed, stolen or drained.
	State  string      `json:"state"`
	Key    string      `json:"key,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	Error  string      `json:"error,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
}

// LeaseStatus is the GET /internal/v1/lease/{id} reply.
type LeaseStatus struct {
	Lease     string            `json:"lease"`
	Status    string            `json:"status"`
	Cells     int               `json:"cells"`
	Completed int               `json:"completed"`
	Stolen    int               `json:"stolen"`
	CellState []LeaseCellStatus `json:"cell_states"`
}

// StealRequest is the POST /internal/v1/lease/{id}/steal body.
type StealRequest struct {
	// Max bounds how many pending cells to reclaim.
	Max int `json:"max"`
}

// StealResponse lists the reclaimed cell indices (ascending). Only cells
// that had not started count; a running or finished cell is never
// stolen.
type StealResponse struct {
	Lease  string `json:"lease"`
	Stolen []int  `json:"stolen"`
}

// validLeaseID restricts lease IDs to a URL- and metric-safe alphabet.
func validLeaseID(id string) error {
	if id == "" {
		return errors.New("lease id is required")
	}
	if len(id) > MaxLeaseID {
		return fmt.Errorf("lease id longer than %d bytes", MaxLeaseID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("lease id contains %q (want [A-Za-z0-9._-])", c)
		}
	}
	return nil
}

// Validate checks shape and bounds of a lease grant. Like the public
// decoders it is the complete acceptance predicate for untrusted input.
func (r *LeaseRequest) Validate() error {
	if err := validLeaseID(r.Lease); err != nil {
		return err
	}
	if err := validateParams(r.Params); err != nil {
		return err
	}
	if err := validateEngine(r.Engine); err != nil {
		return err
	}
	if len(r.Cells) == 0 {
		return errors.New("lease has no cells")
	}
	if len(r.Cells) > MaxSweepCells {
		return fmt.Errorf("lease carries %d cells, limit %d", len(r.Cells), MaxSweepCells)
	}
	for i, c := range r.Cells {
		if err := validateApp(c.App); err != nil {
			return fmt.Errorf("cell %d: %w", i, err)
		}
		if len(c.Algorithm) > MaxNameLen {
			return fmt.Errorf("cell %d: algorithm name longer than %d bytes", i, MaxNameLen)
		}
		if _, err := placement.ByName(c.Algorithm); err != nil {
			return fmt.Errorf("cell %d: %w", i, err)
		}
		if c.Procs < 1 || c.Procs > MaxProcs {
			return fmt.Errorf("cell %d: procs %d out of range [1, %d]", i, c.Procs, MaxProcs)
		}
	}
	if r.Trace != "" {
		if _, ok := obs.ParseTrace(r.Trace); !ok {
			return fmt.Errorf("trace %q is not a Mtsim-Trace value", r.Trace)
		}
	}
	return nil
}

// Validate bounds a steal request.
func (r *StealRequest) Validate() error {
	if r.Max < 1 || r.Max > MaxSweepCells {
		return fmt.Errorf("steal max %d out of range [1, %d]", r.Max, MaxSweepCells)
	}
	return nil
}

// DecodeLeaseRequest reads and validates a POST /internal/v1/lease body.
func DecodeLeaseRequest(r io.Reader) (*LeaseRequest, error) {
	var req LeaseRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeStealRequest reads and validates a steal body.
func DecodeStealRequest(r io.Reader) (*StealRequest, error) {
	var req StealRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// leaseCells expands a lease into cellSpecs in the granted order.
func leaseCells(req *LeaseRequest, engine string) []cellSpec {
	cells := make([]cellSpec, len(req.Cells))
	for i, c := range req.Cells {
		cells[i] = cellSpec{
			app: c.App, algorithm: c.Algorithm, procs: c.Procs,
			infinite: req.Infinite, engine: engine,
		}
	}
	return cells
}

// leaseStatus renders the job's lease view: per-cell states with results
// attached to done cells as they finish.
func (j *job) leaseStatus(leaseID string) LeaseStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := LeaseStatus{
		Lease:     leaseID,
		Status:    j.status,
		Cells:     len(j.cells),
		Completed: j.completed,
		Stolen:    j.stolen,
		CellState: make([]LeaseCellStatus, len(j.cells)),
	}
	for i := range j.cells {
		cs := LeaseCellStatus{State: cellStateNames[j.states[i]]}
		switch j.states[i] {
		case cellDone:
			r := j.results[i]
			cs.Key, cs.Cached, cs.Result = r.key, r.cached, r.res
		case cellFailed:
			r := j.results[i]
			cs.Key = r.key
			if r.err != nil {
				cs.Error = r.err.Error()
			}
		}
		st.CellState[i] = cs
	}
	return st
}

// handleLeaseGrant accepts (or idempotently re-acknowledges) a lease.
func (s *Server) handleLeaseGrant(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errServerDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeLeaseRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	engine := normalizeEngine(req.Engine)
	j := newJob(leaseJobPrefix+req.Lease, resolveParams(req.Params), leaseCells(req, engine))
	if s.spans != nil {
		if ctx, ok := obs.ParseTrace(req.Trace); ok {
			// Join the coordinator's trace; the lease span ends when the
			// lease job reaches a terminal state. A duplicate grant's span
			// is never ended, so it is never recorded.
			j.span = s.spans.Start(ctx, s.opts.ServiceName, "lease "+req.Lease)
			j.trace = j.span.Context()
		}
	}

	reg, existing := s.jobs.add(j)
	if existing {
		writeJSON(w, http.StatusOK, reg.leaseStatus(req.Lease))
		return
	}
	if err := s.enqueue(j); err != nil {
		s.jobs.remove(j.id)
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error(), true)
		case errors.Is(err, errServerDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error(), true)
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), false)
		}
		return
	}
	s.metrics.leasesGranted.Inc()
	writeJSON(w, http.StatusAccepted, j.leaseStatus(req.Lease))
}

// handleLeaseStatus reports a lease's per-cell states and results.
func (s *Server) handleLeaseStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(leaseJobPrefix + id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown lease "+id, false)
		return
	}
	writeJSON(w, http.StatusOK, j.leaseStatus(id))
}

// handleLeaseSteal reclaims pending cells from a lease's tail.
func (s *Server) handleLeaseSteal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(leaseJobPrefix + id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown lease "+id, false)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeStealRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	stolen := j.steal(req.Max)
	s.metrics.cellsStolen.Add(int64(len(stolen)))
	if len(stolen) > 0 {
		if s.spans != nil && j.trace.Valid() {
			s.spans.AddEvent(j.trace, s.opts.ServiceName, "steal",
				fmt.Sprintf("%d cells reclaimed", len(stolen)))
		}
		s.publishJob(j)
	}
	writeJSON(w, http.StatusOK, StealResponse{Lease: id, Stolen: stolen})
}
