package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/retry"
	"repro/internal/serve"
)

// scriptedServer answers /v1/sweep with a scripted status sequence (last
// status repeats) and records attempt times.
type scriptedServer struct {
	mu     sync.Mutex
	script []int
	times  []time.Time
	srv    *httptest.Server
}

func newScripted(t *testing.T, script ...int) *scriptedServer {
	t.Helper()
	s := &scriptedServer{script: script}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		code := s.script[min(len(s.times), len(s.script)-1)]
		s.times = append(s.times, time.Now())
		s.mu.Unlock()
		switch code {
		case 200:
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"job":"j1","status":"queued","cells":1}`))
		case 429:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(429)
			w.Write([]byte(`{"error":"queue full","retriable":true}`))
		default:
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"upstream sad"}`))
		}
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *scriptedServer) attempts() []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Time(nil), s.times...)
}

func TestDefaultFailsFastOn429(t *testing.T) {
	ss := newScripted(t, 429)
	cl := New(ss.srv.URL)
	_, err := cl.Sweep(&serve.SweepRequest{Apps: []string{"mp3d"}, Algorithms: []string{"RANDOM"}, Procs: []int{4}})
	if err == nil {
		t.Fatal("429 accepted")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s (parsed from header)", ae.RetryAfter)
	}
	if got := len(ss.attempts()); got != 1 {
		t.Fatalf("attempts = %d, want 1 (fail-fast default)", got)
	}
}

func TestRetriesThrough429HonoringRetryAfter(t *testing.T) {
	ss := newScripted(t, 429, 200)
	cl := New(ss.srv.URL)
	cl.Policy = retry.Policy{BaseDelay: time.Millisecond, MaxAttempts: 5}
	acc, err := cl.Sweep(&serve.SweepRequest{Apps: []string{"mp3d"}, Algorithms: []string{"RANDOM"}, Procs: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Job != "j1" {
		t.Fatalf("job = %q", acc.Job)
	}
	ts := ss.attempts()
	if len(ts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(ts))
	}
	// The 1ms backoff must have been floored by the 1s Retry-After.
	if gap := ts[1].Sub(ts[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry gap %v ignored Retry-After", gap)
	}
}

func TestRetriesTransientGatewayStatuses(t *testing.T) {
	ss := newScripted(t, 502, 503, 504, 200)
	cl := New(ss.srv.URL)
	cl.Policy = retry.Policy{BaseDelay: time.Millisecond, MaxAttempts: 10}
	if _, err := cl.Sweep(&serve.SweepRequest{Apps: []string{"mp3d"}, Algorithms: []string{"RANDOM"}, Procs: []int{4}}); err != nil {
		t.Fatal(err)
	}
	if got := len(ss.attempts()); got != 4 {
		t.Fatalf("attempts = %d, want 4", got)
	}
}

func TestFinalErrorSurfacesAttempts(t *testing.T) {
	// The 1s Retry-After floors every delay, so the 50ms budget trips
	// first; the error must still surface the attempt count.
	ss := newScripted(t, 429)
	cl := New(ss.srv.URL)
	cl.Policy = retry.Policy{BaseDelay: time.Millisecond, MaxAttempts: 3}
	cl.RetryBudget = 50 * time.Millisecond
	_, err := cl.Sweep(&serve.SweepRequest{Apps: []string{"mp3d"}, Algorithms: []string{"RANDOM"}, Procs: []int{4}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("final error does not surface attempts: %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 {
		t.Fatalf("wrapped APIError lost: %v", err)
	}
}

func TestExhaustedAttemptsSurfaceCount(t *testing.T) {
	ss2 := newScripted(t, 503)
	cl := New(ss2.srv.URL)
	cl.Policy = retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, MaxAttempts: 3}
	_, err := cl.Sweep(&serve.SweepRequest{Apps: []string{"mp3d"}, Algorithms: []string{"RANDOM"}, Procs: []int{4}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want attempt count surfaced", err)
	}
	if got := len(ss2.attempts()); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestTransportErrorsRetried(t *testing.T) {
	// A server that dies after accepting the listener: connection refused
	// from the first attempt.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := srv.URL
	srv.Close()

	cl := New(deadURL)
	cl.Policy = retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, MaxAttempts: 3}
	start := time.Now()
	_, err := cl.Sweep(&serve.SweepRequest{Apps: []string{"mp3d"}, Algorithms: []string{"RANDOM"}, Procs: []int{4}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("transport error not retried: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop took %v", elapsed)
	}
}

func TestNonRetriableErrorUnchanged(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(400)
		w.Write([]byte(`{"error":"bad request"}`))
	}))
	defer srv.Close()
	cl := New(srv.URL)
	cl.Policy = retry.Policy{BaseDelay: time.Millisecond, MaxAttempts: 5}
	_, err := cl.Sweep(&serve.SweepRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 || ae.Retriable {
		t.Fatalf("err = %v, want plain 400", err)
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("non-retriable error wrapped in retry context: %v", err)
	}
}
