// Package client is the Go client for mtserve's JSON API. It is what
// cmd/experiments -remote and mtserve -loadgen speak; the types are
// shared with the server (package serve), so a decoded result is the
// same sim.Result the library would have returned — deep-equality
// between remote and local runs is a test invariant, not an
// approximation.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Client talks to one mtserve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Policy is the backoff schedule for transient failures (429
	// queue-full, 502/503/504, connection errors), run on the shared
	// internal/retry core with the server's Retry-After honored as a
	// floor. The zero Policy fails fast (one attempt) unless the legacy
	// MaxRetries/RetryWait fields ask otherwise.
	Policy retry.Policy
	// RetryBudget caps the total time spent retrying one call (0 = no
	// cap beyond the attempt bound). On exhaustion the error reports the
	// attempt count and wraps the last failure.
	RetryBudget time.Duration
	// MaxRetries bounds retries of retriable rejections. Default 0: fail
	// fast. Superseded by Policy.MaxAttempts when that is set.
	MaxRetries int
	// RetryWait is the base backoff delay. Default 250ms. Superseded by
	// Policy.BaseDelay when that is set.
	RetryWait time.Duration
}

// New returns a client for the given base URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx reply, decoded.
type APIError struct {
	Status    int
	Message   string
	Retriable bool
	// RetryAfter is the server's parsed Retry-After hint (0 if absent);
	// the retry loop uses it as a backoff floor.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("mtserve: HTTP %d: %s", e.Status, e.Message)
}

// IsRetriable reports whether err is transient: an APIError the server
// marked retriable, a transient status (429 backpressure, 502/503/504),
// or a transport-level failure (every API POST is idempotent — content-
// addressed jobs, deterministic simulations — so re-sending is safe).
func IsRetriable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retriable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// retriableStatus lists replies that are transient by protocol even when
// the body carries no retriable flag (e.g. a proxy answered, not
// mtserve).
func retriableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// post sends one JSON request and decodes the 2xx reply into out,
// retrying retriable rejections up to MaxRetries times.
func (c *Client) post(path string, in, out any) error {
	return c.postTrace(path, in, out, "")
}

// postTrace is post with an optional Mtsim-Trace header value ("" sends
// no header) so proxies can propagate a distributed-trace context.
// Transient failures retry through the shared backoff core: exponential
// delays floored by the server's Retry-After, bounded by the policy's
// attempt budget and the client's RetryBudget; the final error reports
// how many attempts were spent and wraps the last failure (errors.As
// still reaches the *APIError).
func (c *Client) postTrace(path string, in, out any, trace string) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	pol := c.policy()
	start := time.Now()
	for attempt := 1; ; attempt++ {
		err := c.roundTrip(http.MethodPost, path, body, out, trace)
		if err == nil || !IsRetriable(err) {
			return err
		}
		if attempt >= pol.Attempts() {
			if attempt == 1 {
				// Fail-fast configuration: keep the bare error (callers
				// match on it directly, e.g. backpressure tests).
				return err
			}
			return fmt.Errorf("mtserve: giving up after %d attempts over %s: %w",
				attempt, time.Since(start).Round(time.Millisecond), err)
		}
		var hint time.Duration
		var ae *APIError
		if errors.As(err, &ae) {
			hint = ae.RetryAfter
		}
		// Midpoint jitter: client-side schedules stay deterministic for
		// the differential tests; decorrelation lives server-side.
		delay := pol.Delay(attempt-1, hint, 0.5)
		if c.RetryBudget > 0 && time.Since(start)+delay > c.RetryBudget {
			return fmt.Errorf("mtserve: retry budget %s exhausted after %d attempts: %w",
				c.RetryBudget, attempt, err)
		}
		time.Sleep(delay)
	}
}

// policy resolves the effective retry policy, honoring the legacy
// MaxRetries/RetryWait fields when the structured Policy is unset.
func (c *Client) policy() retry.Policy {
	p := c.Policy
	if p.MaxAttempts == 0 {
		p.MaxAttempts = c.MaxRetries + 1
	}
	if p.BaseDelay == 0 {
		if c.RetryWait > 0 {
			p.BaseDelay = c.RetryWait
		} else {
			p.BaseDelay = 250 * time.Millisecond
		}
	}
	if p.Jitter == 0 {
		p.Jitter = -1 // deterministic schedule unless explicitly jittered
	}
	return p
}

func (c *Client) get(path string, out any) error {
	return c.roundTrip(http.MethodGet, path, nil, out, "")
}

func (c *Client) roundTrip(method, path string, body []byte, out any, trace string) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er serve.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err != nil || er.Error == "" {
			er.Error = resp.Status
		}
		ae := &APIError{
			Status:    resp.StatusCode,
			Message:   er.Error,
			Retriable: er.Retriable || retriableStatus(resp.StatusCode),
		}
		if ra, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			ae.RetryAfter = ra
		}
		return ae
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Simulate runs one cell synchronously.
func (c *Client) Simulate(req *serve.SimulateRequest) (*serve.SimulateResponse, error) {
	return c.SimulateTrace(req, "")
}

// SimulateTrace is Simulate joining an existing distributed trace: trace
// is a Mtsim-Trace header value ("" sends no header). The coordinator's
// proxy path uses it so a proxied cell's worker spans land in the
// caller's trace.
func (c *Client) SimulateTrace(req *serve.SimulateRequest, trace string) (*serve.SimulateResponse, error) {
	var out serve.SimulateResponse
	if err := c.postTrace("/v1/simulate", req, &out, trace); err != nil {
		return nil, err
	}
	if out.Result == nil {
		return nil, errors.New("mtserve: simulate reply without a result")
	}
	return &out, nil
}

// Advise asks the placement advisor for a recommendation: the
// COHERENCE clustering of the request's sharing source (catalog app,
// observed MTT2 trace, or live pair matrix) with predicted savings over
// the caller's current placement.
func (c *Client) Advise(req *serve.AdviseRequest) (*serve.AdviseResponse, error) {
	return c.AdviseTrace(req, "")
}

// AdviseTrace is Advise joining an existing distributed trace (the
// coordinator's proxy path, like SimulateTrace).
func (c *Client) AdviseTrace(req *serve.AdviseRequest, trace string) (*serve.AdviseResponse, error) {
	var out serve.AdviseResponse
	if err := c.postTrace("/v1/advise", req, &out, trace); err != nil {
		return nil, err
	}
	if out.Placement == nil {
		return nil, errors.New("mtserve: advise reply without a placement")
	}
	return &out, nil
}

// Spans fetches the raw span list for one trace ID. An unknown trace is
// not an error — it returns an empty slice, so a coordinator can merge
// worker stores best-effort.
func (c *Client) Spans(traceID string) ([]obs.Span, error) {
	var out serve.TraceSpans
	if err := c.get("/v1/trace/"+traceID+"?format=spans", &out); err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return nil, nil
		}
		return nil, err
	}
	return out.Spans, nil
}

// Sweep submits an asynchronous sweep.
func (c *Client) Sweep(req *serve.SweepRequest) (*serve.SweepAccepted, error) {
	var out serve.SweepAccepted
	if err := c.post("/v1/sweep", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches a job's status.
func (c *Client) Job(id string) (*serve.JobStatus, error) {
	var out serve.JobStatus
	if err := c.get("/v1/jobs/"+id, &out); err != nil {
		// A drained (retriable) job answers 503 but still carries the
		// status body; surface it as a status, not an error.
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable {
			return &serve.JobStatus{Job: id, Status: serve.StatusRetriable}, nil
		}
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal status or the timeout
// elapses (0 = wait forever).
func (c *Client) WaitJob(id string, poll, timeout time.Duration) (*serve.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case serve.StatusDone, serve.StatusFailed, serve.StatusRetriable, serve.StatusCanceled:
			return st, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("mtserve: job %s still %s after %s", id, st.Status, timeout)
		}
		time.Sleep(poll)
	}
}

// Health fetches /healthz (valid on both 200 and 503-draining replies).
func (c *Client) Health() (*serve.HealthResponse, error) {
	var out serve.HealthResponse
	err := c.get("/healthz", &out)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable {
			out.Status = "draining"
			return &out, nil
		}
		return nil, err
	}
	return &out, nil
}

// Placements fetches the server's catalog.
func (c *Client) Placements() (*serve.PlacementsResponse, error) {
	var out serve.PlacementsResponse
	if err := c.get("/v1/placements", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("mtserve: /metrics HTTP %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return string(b), err
}

// Lease grants (or idempotently re-acknowledges) a lease on a worker.
// This is the cluster-internal protocol a coordinator speaks; ordinary
// clients never call it.
func (c *Client) Lease(req *serve.LeaseRequest) (*serve.LeaseStatus, error) {
	var out serve.LeaseStatus
	if err := c.post("/internal/v1/lease", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// LeaseStatus polls a lease's per-cell states and results.
func (c *Client) LeaseStatus(id string) (*serve.LeaseStatus, error) {
	var out serve.LeaseStatus
	if err := c.get("/internal/v1/lease/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Steal reclaims up to max not-yet-started cells from a lease.
func (c *Client) Steal(id string, max int) (*serve.StealResponse, error) {
	var out serve.StealResponse
	if err := c.post("/internal/v1/lease/"+id+"/steal", &serve.StealRequest{Max: max}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SimulateCell is the convenience the remote runner uses: it ships an
// explicit placement and full config (so COHERENCE placements and
// ablation configs survive the wire exactly) and returns the bare
// result.
func (c *Client) SimulateCell(params serve.Params, app string, placementAlg string, clusters [][]int, cfg sim.Config, engine string) (*sim.Result, error) {
	spec := serve.ConfigSpecOf(cfg)
	resp, err := c.Simulate(&serve.SimulateRequest{
		Params:    &params,
		App:       app,
		Placement: &serve.PlacementSpec{Algorithm: placementAlg, Clusters: clusters},
		Config:    &spec,
		Engine:    engine,
	})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}
