package serve

import (
	"strings"
	"testing"
)

// FuzzDecodeRequest drives the strict JSON decoder + validator with
// arbitrary bodies. The invariant is total robustness: any input either
// yields a request that passed Validate, or a plain error — never a
// panic, and never unbounded allocation (the decoder caps bodies at
// MaxRequestBytes and validation caps every numeric and list field, so a
// hostile body cannot make the server stage gigabytes of work).
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Valid simulate bodies.
		`{"app":"MP3D","algorithm":"LATENCY","procs":4}`,
		`{"app":"Gauss","algorithm":"IDEAL","procs":2,"infinite":true,"engine":"reference","counters":true}`,
		`{"params":{"scale":0.25,"seed":1994},"app":"Water","algorithm":"RANDOM","procs":8}`,
		`{"app":"MP3D","placement":{"algorithm":"CUSTOM","clusters":[[0,1],[2,3]]},"procs":4}`,
		`{"app":"MP3D","algorithm":"LATENCY","config":{"processors":4,"max_contexts":2,"protocol":"update"}}`,
		// Valid sweep bodies (also fed to the sweep decoder below).
		`{"apps":["MP3D","Gauss"],"algorithms":["LATENCY","IDEAL"],"procs":[2,4]}`,
		`{"apps":["FFT"],"algorithms":["RANDOM"],"procs":[2],"infinite":true,"engine":"fast"}`,
		// Invalid shapes the decoder must reject gracefully.
		``,
		`null`,
		`{}`,
		`[]`,
		`{"app":"MP3D"`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":4}{"trailing":true}`,
		`{"unknown_field":1}`,
		`{"app":"NoSuchApp","algorithm":"LATENCY","procs":4}`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":-1}`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":1e9}`,
		`{"params":{"scale":-1},"app":"MP3D","algorithm":"LATENCY","procs":4}`,
		`{"app":"MP3D","placement":{"algorithm":"X","clusters":[[99999]]},"procs":4}`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":4,"config":{"processors":99999}}`,
		`{"apps":[],"algorithms":["LATENCY"],"procs":[2]}`,
		`{"app":"` + strings.Repeat("A", 4096) + `","algorithm":"LATENCY","procs":4}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		if req, err := DecodeSimulateRequest(strings.NewReader(body)); err == nil {
			// A decoded request must be internally coherent: re-running
			// Validate is a no-op, and its identity fields are bounded.
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded request fails its own Validate: %v", verr)
			}
			if len(req.App) > MaxNameLen || req.Procs > MaxProcs {
				t.Fatalf("validated request exceeds bounds: app=%d procs=%d", len(req.App), req.Procs)
			}
		}
		if req, err := DecodeSweepRequest(strings.NewReader(body)); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded sweep fails its own Validate: %v", verr)
			}
			if req.Cells() > MaxSweepCells {
				t.Fatalf("validated sweep stages %d cells", req.Cells())
			}
		}
	})
}

// FuzzDecodeAdviseRequest holds the advisor's decoder to the same
// total-robustness bar: the pair-matrix and trace payloads are the
// largest attacker-controlled structures the server accepts, so any
// input must either validate (bounded) or fail cleanly.
func FuzzDecodeAdviseRequest(f *testing.F) {
	seeds := []string{
		// Valid bodies, one per sharing source.
		`{"app":"MP3D","procs":4}`,
		`{"params":{"scale":0.25,"seed":1994},"app":"Water","procs":8,"engine":"reference"}`,
		`{"pair":[[0,5],[5,0]],"lengths":[10,12],"procs":2}`,
		`{"pair":[[0,1],[1,0]],"lengths":[1,1],"procs":2,` +
			`"current":{"algorithm":"X","clusters":[[0],[1]]},"mem_latency":30}`,
		`{"trace_mtt2":"TVRUMg==","procs":2}`,
		// Shapes the decoder must reject gracefully.
		``,
		`null`,
		`{}`,
		`[]`,
		`{"app":"MP3D"`,
		`{"app":"MP3D","procs":4}{"trailing":true}`,
		`{"app":"MP3D","procs":4,"unknown_field":1}`,
		`{"procs":4}`,
		`{"app":"MP3D","pair":[[0]],"lengths":[1],"procs":4}`,
		`{"app":"NoSuchApp","procs":4}`,
		`{"app":"MP3D","procs":-1}`,
		`{"app":"MP3D","procs":1e9}`,
		`{"pair":[[0,1]],"lengths":[1,1],"procs":2}`,
		`{"pair":[[0,1],[1,0]],"lengths":[1],"procs":2}`,
		`{"lengths":[1],"procs":2}`,
		`{"app":"MP3D","procs":2,"engine":"warp"}`,
		`{"app":"MP3D","procs":2,"current":{"algorithm":"X","clusters":[[99999]]}}`,
		`{"app":"` + strings.Repeat("A", 4096) + `","procs":4}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeAdviseRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("decoded advise request fails its own Validate: %v", verr)
		}
		if len(req.App) > MaxNameLen || req.Procs < 1 || req.Procs > MaxProcs {
			t.Fatalf("validated request exceeds bounds: app=%d procs=%d", len(req.App), req.Procs)
		}
		if len(req.Pair) > MaxClusterThreads {
			t.Fatalf("validated pair matrix has %d rows", len(req.Pair))
		}
		for _, row := range req.Pair {
			if len(row) != len(req.Pair) {
				t.Fatal("validated pair matrix is not square")
			}
		}
	})
}

// FuzzDecodeLeaseRequest extends the same total-robustness invariant to
// the cluster-internal lease protocol: the grant and steal decoders face
// a coordinator over the network, so they are held to exactly the bar of
// the public decoders — validated or rejected, bounded either way.
func FuzzDecodeLeaseRequest(f *testing.F) {
	seeds := []string{
		// Valid grants and steals.
		`{"lease":"sw-1-0","cells":[{"app":"MP3D","algorithm":"LATENCY","procs":4}]}`,
		`{"lease":"L.2","params":{"scale":0.25,"seed":1994},"engine":"reference","infinite":true,` +
			`"cells":[{"app":"Gauss","algorithm":"RANDOM","procs":2},{"app":"FFT","algorithm":"IDEAL","procs":8}]}`,
		`{"max":1}`,
		`{"max":16}`,
		// Shapes the decoders must reject gracefully.
		``,
		`null`,
		`{}`,
		`[]`,
		`{"lease":"x"`,
		`{"lease":"x","cells":[]}`,
		`{"lease":"has space","cells":[{"app":"MP3D","algorithm":"LATENCY","procs":4}]}`,
		`{"lease":"x","cells":[{"app":"NoSuchApp","algorithm":"LATENCY","procs":4}]}`,
		`{"lease":"x","cells":[{"app":"MP3D","algorithm":"LATENCY","procs":-1}]}`,
		`{"lease":"x","engine":"warp","cells":[{"app":"MP3D","algorithm":"LATENCY","procs":4}]}`,
		`{"lease":"` + strings.Repeat("L", 4096) + `","cells":[{"app":"MP3D","algorithm":"LATENCY","procs":4}]}`,
		`{"max":0}`,
		`{"max":-5}`,
		`{"max":1e9}`,
		`{"max":1}{"trailing":true}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		if req, err := DecodeLeaseRequest(strings.NewReader(body)); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded lease fails its own Validate: %v", verr)
			}
			if len(req.Lease) > MaxLeaseID || len(req.Cells) > MaxSweepCells {
				t.Fatalf("validated lease exceeds bounds: id=%d cells=%d",
					len(req.Lease), len(req.Cells))
			}
		}
		if req, err := DecodeStealRequest(strings.NewReader(body)); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded steal fails its own Validate: %v", verr)
			}
			if req.Max < 1 || req.Max > MaxSweepCells {
				t.Fatalf("validated steal max %d out of bounds", req.Max)
			}
		}
	})
}
