package serve

import (
	"strings"
	"testing"
)

// FuzzDecodeRequest drives the strict JSON decoder + validator with
// arbitrary bodies. The invariant is total robustness: any input either
// yields a request that passed Validate, or a plain error — never a
// panic, and never unbounded allocation (the decoder caps bodies at
// MaxRequestBytes and validation caps every numeric and list field, so a
// hostile body cannot make the server stage gigabytes of work).
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Valid simulate bodies.
		`{"app":"MP3D","algorithm":"LATENCY","procs":4}`,
		`{"app":"Gauss","algorithm":"IDEAL","procs":2,"infinite":true,"engine":"reference","counters":true}`,
		`{"params":{"scale":0.25,"seed":1994},"app":"Water","algorithm":"RANDOM","procs":8}`,
		`{"app":"MP3D","placement":{"algorithm":"CUSTOM","clusters":[[0,1],[2,3]]},"procs":4}`,
		`{"app":"MP3D","algorithm":"LATENCY","config":{"processors":4,"max_contexts":2,"protocol":"update"}}`,
		// Valid sweep bodies (also fed to the sweep decoder below).
		`{"apps":["MP3D","Gauss"],"algorithms":["LATENCY","IDEAL"],"procs":[2,4]}`,
		`{"apps":["FFT"],"algorithms":["RANDOM"],"procs":[2],"infinite":true,"engine":"fast"}`,
		// Invalid shapes the decoder must reject gracefully.
		``,
		`null`,
		`{}`,
		`[]`,
		`{"app":"MP3D"`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":4}{"trailing":true}`,
		`{"unknown_field":1}`,
		`{"app":"NoSuchApp","algorithm":"LATENCY","procs":4}`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":-1}`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":1e9}`,
		`{"params":{"scale":-1},"app":"MP3D","algorithm":"LATENCY","procs":4}`,
		`{"app":"MP3D","placement":{"algorithm":"X","clusters":[[99999]]},"procs":4}`,
		`{"app":"MP3D","algorithm":"LATENCY","procs":4,"config":{"processors":99999}}`,
		`{"apps":[],"algorithms":["LATENCY"],"procs":[2]}`,
		`{"app":"` + strings.Repeat("A", 4096) + `","algorithm":"LATENCY","procs":4}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		if req, err := DecodeSimulateRequest(strings.NewReader(body)); err == nil {
			// A decoded request must be internally coherent: re-running
			// Validate is a no-op, and its identity fields are bounded.
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded request fails its own Validate: %v", verr)
			}
			if len(req.App) > MaxNameLen || req.Procs > MaxProcs {
				t.Fatalf("validated request exceeds bounds: app=%d procs=%d", len(req.App), req.Procs)
			}
		}
		if req, err := DecodeSweepRequest(strings.NewReader(body)); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded sweep fails its own Validate: %v", verr)
			}
			if req.Cells() > MaxSweepCells {
				t.Fatalf("validated sweep stages %d cells", req.Cells())
			}
		}
	})
}
