package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func testPayload(i int) []byte {
	return []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", i%37)))
}

// writeSegment hand-assembles a segment file from (key, payload) pairs,
// optionally sealed. Tests use it to fabricate on-disk states the API
// would never produce (duplicates, damage, torn tails).
func writeSegment(t *testing.T, path string, sealed bool, recs ...int) {
	t.Helper()
	buf := append([]byte(nil), magic[:]...)
	var payload uint64
	for _, i := range recs {
		p := testPayload(i)
		buf = appendRecordFrame(buf, testKey(i), p)
		payload += uint64(len(p))
	}
	if sealed {
		buf = appendSealFrame(buf, uint64(len(recs)), payload)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func wantGet(t *testing.T, s *Store, i int) {
	t.Helper()
	got, ok := s.Get(testKey(i))
	if !ok {
		t.Fatalf("Get(key %d): miss, want hit", i)
	}
	if !bytes.Equal(got, testPayload(i)) {
		t.Fatalf("Get(key %d) = %q, want %q", i, got, testPayload(i))
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 50; i++ {
		if err := s.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Queued records must be visible before the flusher persists them.
	for i := 0; i < 50; i++ {
		wantGet(t, s, i)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		wantGet(t, s, i)
	}
	if _, ok := s.Get(testKey(999)); ok {
		t.Fatal("Get(absent key): hit, want miss")
	}
	st := s.Stats()
	if st.Entries != 50 {
		t.Fatalf("Entries = %d, want 50", st.Entries)
	}
	if st.HitRate() <= 0.9 {
		t.Fatalf("HitRate = %v, want > 0.9", st.HitRate())
	}
}

func TestDupPutDedupes(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	for j := 0; j < 3; j++ {
		if err := s.Put(testKey(1), testPayload(1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	for j := 0; j < 3; j++ {
		s.Put(testKey(1), testPayload(1))
	}
	if st := s.Stats(); st.Entries != 1 || st.DupPuts < 4 {
		t.Fatalf("Entries = %d, DupPuts = %d; want 1 entry, >= 4 dups", st.Entries, st.DupPuts)
	}
}

func TestCleanCloseWarmReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 20; i++ {
		s.Put(testKey(i), testPayload(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A clean Close seals everything: reopen must show zero recovery
	// scars and every record warm.
	s2 := mustOpen(t, Options{Dir: dir})
	st := s2.Stats()
	if st.TruncatedTails != 0 || st.Quarantined != 0 {
		t.Fatalf("clean reopen: truncated=%d quarantined=%d, want 0/0", st.TruncatedTails, st.Quarantined)
	}
	if st.Entries != 20 {
		t.Fatalf("Entries = %d, want 20", st.Entries)
	}
	for i := 0; i < 20; i++ {
		wantGet(t, s2, i)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	// A live segment with two whole records and a torn third: the
	// kill -9 signature.
	path := filepath.Join(dir, openName(0))
	writeSegment(t, path, false, 1, 2)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecordFrame(nil, testKey(3), testPayload(3))
	torn = torn[:len(torn)-3] // lose the last bytes of the CRC
	if err := os.WriteFile(path, append(whole, torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, Options{Dir: dir})
	st := s.Stats()
	if st.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
	}
	if st.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0", st.Quarantined)
	}
	wantGet(t, s, 1)
	wantGet(t, s, 2)
	if _, ok := s.Get(testKey(3)); ok {
		t.Fatal("torn record served")
	}
	// The recovered segment must have been sealed in place.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); err != nil {
		t.Fatalf("recovered live segment not sealed: %v", err)
	}
}

func TestSealedSegmentQuarantinedOnBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segName(0))
	writeSegment(t, path, true, 1, 2, 3)
	data, _ := os.ReadFile(path)
	data[len(magic)+10] ^= 0x40
	os.WriteFile(path, data, 0o644)

	s := mustOpen(t, Options{Dir: dir})
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("record from quarantined segment served")
	}
	ents, _ := os.ReadDir(dir)
	var quarantined bool
	for _, e := range ents {
		if strings.Contains(e.Name(), ".quarantined") {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("no .quarantined file left for inspection")
	}
}

func TestSealedSegmentTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segName(0))
	writeSegment(t, path, true, 1, 2)
	// Truncate exactly at a frame boundary: without the mandatory
	// footer cross-check this would parse cleanly.
	one := append([]byte(nil), magic[:]...)
	one = appendRecordFrame(one, testKey(1), testPayload(1))
	if err := os.Truncate(path, int64(len(one))); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Options{Dir: dir})
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

func TestRuntimeDamageNeverServed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		s.Put(testKey(i), testPayload(i))
	}
	s.Close()

	s2 := mustOpen(t, Options{Dir: dir})
	// Damage the first record of the (already scanned and accepted)
	// segment behind the running store's back: every Get re-verifies, so
	// the damage must surface as quarantine + miss, not as served bytes
	// — and quarantine takes the whole segment's records with it.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".mts") {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			data[len(magic)+8] ^= 0xff
			os.WriteFile(p, data, 0o644)
		}
	}
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(testKey(i)); ok {
			t.Fatalf("damaged record %d served", i)
		}
	}
	if st := s2.Stats(); st.Quarantined == 0 {
		t.Fatal("runtime damage not quarantined")
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, CompactAfter: 64})
	const n = 40
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testPayload(i))
		if i%5 == 4 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SealedSegments < 2 {
		t.Fatalf("SealedSegments = %d, want >= 2 (rotation)", st.SealedSegments)
	}
	s.Compact()
	st := s.Stats()
	if st.SealedSegments != 1 {
		t.Fatalf("after Compact: SealedSegments = %d, want 1", st.SealedSegments)
	}
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if st.Entries != n {
		t.Fatalf("Entries = %d, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		wantGet(t, s, i)
	}
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir})
	for i := 0; i < n; i++ {
		wantGet(t, s2, i)
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SegmentBytes: 128, CompactAfter: 3})
	for i := 0; i < 60; i++ {
		s.Put(testKey(i), testPayload(i))
		s.Flush()
	}
	s.Flush()
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatalf("auto compaction never triggered: %+v", st)
	}
	for i := 0; i < 60; i++ {
		wantGet(t, s, i)
	}
}

func TestCompactionCrashLeftoversRecovered(t *testing.T) {
	dir := t.TempDir()
	// Crash window 1: compaction temporary present, olds intact.
	writeSegment(t, filepath.Join(dir, segName(0)), true, 1, 2)
	writeSegment(t, filepath.Join(dir, segName(1)+".compact"), false, 9)
	s := mustOpen(t, Options{Dir: dir})
	if _, err := os.Stat(filepath.Join(dir, segName(1)+".compact")); !os.IsNotExist(err) {
		t.Fatal("compaction leftover not deleted at Open")
	}
	if _, ok := s.Get(testKey(9)); ok {
		t.Fatal("record from deleted compaction temporary served")
	}
	wantGet(t, s, 1)
	wantGet(t, s, 2)
	s.Close()

	// Crash window 2: compacted segment renamed into place, olds not yet
	// unlinked — duplicate keys across segments, first-wins dedup.
	dir2 := t.TempDir()
	writeSegment(t, filepath.Join(dir2, segName(0)), true, 1, 2)
	writeSegment(t, filepath.Join(dir2, segName(7)), true, 1, 2, 3)
	s2 := mustOpen(t, Options{Dir: dir2})
	st := s2.Stats()
	if st.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0", st.Quarantined)
	}
	if st.Entries != 3 {
		t.Fatalf("Entries = %d, want 3 (deduplicated)", st.Entries)
	}
	wantGet(t, s2, 1)
	wantGet(t, s2, 2)
	wantGet(t, s2, 3)
}

func TestQueueBoundDropsNeverBlocks(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, QueueDepth: 4})
	// Stall the flusher by holding its lock, then overfill the queue.
	s.mu.Lock()
	var dropped uint64
	for i := 0; i < 20; i++ {
		if len(s.pending) >= s.opts.QueueDepth {
			dropped++
		}
		if len(s.pending) < s.opts.QueueDepth {
			s.pending = append(s.pending, pendingRec{key: testKey(i), payload: testPayload(i)})
			s.pendingIdx[testKey(i)] = len(s.pending) - 1
		}
	}
	s.mu.Unlock()
	// Exercise the real Put bound too.
	for i := 100; i < 120; i++ {
		if err := s.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Dropped == 0 && st.PendingWrites > s.opts.QueueDepth {
		t.Fatalf("queue exceeded bound without dropping: %+v", st)
	}
	s.Flush()
}

func TestPutGetAfterClose(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	s.Close()
	if err := s.Put(testKey(1), testPayload(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("Get after Close returned a hit")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestVerifyReportsTypedCorruption(t *testing.T) {
	good := append([]byte(nil), magic[:]...)
	good = appendRecordFrame(good, testKey(1), testPayload(1))
	good = appendSealFrame(good, 1, uint64(len(testPayload(1))))

	if n, err := Verify(bytes.NewReader(good), true); err != nil || n != 1 {
		t.Fatalf("Verify(valid) = %d, %v", n, err)
	}

	for off := 0; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		_, err := Verify(bytes.NewReader(bad), true)
		if err == nil {
			t.Fatalf("bit flip at offset %d accepted silently", off)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit flip at offset %d: error %T is not *CorruptError", off, err)
		}
	}

	for cut := 0; cut < len(good); cut++ {
		_, err := Verify(bytes.NewReader(good[:cut]), true)
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted silently", cut)
		}
	}
}

func TestCorruptErrorOffsets(t *testing.T) {
	buf := append([]byte(nil), magic[:]...)
	buf = appendRecordFrame(buf, testKey(1), testPayload(1))
	recStart := len(magic)
	buf[recStart+5] ^= 0x80
	buf = appendSealFrame(buf, 1, uint64(len(testPayload(1))))
	_, err := Verify(bytes.NewReader(buf), true)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CorruptError", err)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if ce.Offset != int64(recStart) {
		t.Fatalf("Offset = %d, want %d (frame start)", ce.Offset, recStart)
	}
}

func TestEmptyLiveSegmentDiscarded(t *testing.T) {
	dir := t.TempDir()
	// Only a magic header — a process died right after rotation.
	if err := os.WriteFile(filepath.Join(dir, openName(3)), magic[:], 0o644); err != nil {
		t.Fatal(err)
	}
	// A zero-byte .open — died inside create.
	if err := os.WriteFile(filepath.Join(dir, openName(4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Options{Dir: dir})
	st := s.Stats()
	if st.Quarantined != 0 || st.Entries != 0 {
		t.Fatalf("empty live segments mishandled: %+v", st)
	}
	// Both files must be gone (not quarantined, just discarded).
	for _, id := range []int64{3, 4} {
		if _, err := os.Stat(filepath.Join(dir, openName(id))); !os.IsNotExist(err) {
			t.Fatalf("empty live segment %d not discarded", id)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), SegmentBytes: 512})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Put(testKey(i), testPayload(i))
		}
	}()
	for i := 0; i < 200; i++ {
		if got, ok := s.Get(testKey(i)); ok && !bytes.Equal(got, testPayload(i)) {
			t.Errorf("key %d: wrong bytes", i)
		}
	}
	<-done
	s.Flush()
	for i := 0; i < 200; i++ {
		wantGet(t, s, i)
	}
}
