package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MTS1: the durable result store's on-disk segment container. A segment
// is an append-only sequence of length-framed, CRC-checksummed records,
// each keyed by the 32-byte content address the serving tier already
// uses (the rescache SHA-256 cell key):
//
//	magic   4 bytes "MTS1"
//	frame, repeated:
//	    kind    1 byte: 'R' record, 'E' seal footer
//	    body    kind-specific (below)
//	    crc     4 bytes little-endian, IEEE CRC32 of kind+body
//
//	'R' body: key 32 bytes, plen uvarint, payload plen bytes
//	'E' body: records uvarint, payloadBytes uvarint
//
// A live (unsealed) segment carries only 'R' frames; sealing appends the
// 'E' footer — whose counts cross-check everything decoded before it —
// fsyncs, and atomically renames the file from its .open name to its
// final .mts name. The discipline mirrors the MTT2 trace container: the
// mandatory footer makes truncation of a sealed segment detectable even
// at a clean frame boundary, and the per-frame CRC (which covers the
// kind byte and the length varint, not just the payload) makes any byte
// damage detectable even when the varint stream still happens to parse.
const (
	frameRecord = byte('R')
	frameSeal   = byte('E')

	// maxPayload bounds one record's payload so a corrupt length prefix
	// cannot demand an absurd allocation before decoding can fail.
	maxPayload = 1 << 28
)

var magic = [4]byte{'M', 'T', 'S', '1'}

// KeySize is the content-address width: SHA-256, the same bytes the
// serving tier's rescache keys carry.
const KeySize = 32

// Key is the 32-byte content address of one stored record.
type Key [KeySize]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// ErrChecksum marks a frame whose stored CRC32 does not match its bytes:
// the record was damaged between writer and reader.
var ErrChecksum = errors.New("checksum mismatch")

// ErrTruncated marks a segment that ended mid-frame. For a live segment
// this is the expected signature of a crashed writer (the torn tail is
// dropped); for a sealed segment it is corruption. It wraps
// io.ErrUnexpectedEOF so either sentinel matches with errors.Is.
var ErrTruncated = fmt.Errorf("truncated segment: %w", io.ErrUnexpectedEOF)

// CorruptError is the typed error every segment decode failure is
// reported through: callers distinguish damaged segments from I/O
// plumbing errors with errors.As, and get the byte offset at which the
// damage was detected. The store never propagates a CorruptError to a
// Get caller — damaged segments are quarantined and the lookup becomes a
// miss — but recovery, compaction and the fault-matrix tests see it.
type CorruptError struct {
	// Path names the segment file ("" when scanning a bare stream).
	Path string
	// Offset is the byte offset into the segment at which the problem
	// was detected.
	Offset int64
	// Record is the index of the frame being decoded when the damage
	// surfaced (0-based).
	Record int
	// Err is the underlying cause: ErrChecksum, ErrTruncated, a plain
	// description, or an error from the underlying reader.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	path := e.Path
	if path == "" {
		path = "segment"
	}
	return fmt.Sprintf("store: corrupt %s at byte %d (record %d): %v", path, e.Offset, e.Record, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }

func corruptf(off int64, rec int, format string, args ...any) *CorruptError {
	return &CorruptError{Offset: off, Record: rec, Err: fmt.Errorf(format, args...)}
}

// corruptRead wraps a read failure: EOF mid-frame is truncation, every
// other error passes through so callers can still reach the root cause
// (e.g. an injected I/O fault) via errors.Is.
func corruptRead(off int64, rec int, err error) *CorruptError {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		err = ErrTruncated
	}
	return &CorruptError{Offset: off, Record: rec, Err: err}
}

// appendRecordFrame renders one 'R' frame (kind, key, length, payload,
// CRC) into buf and returns the extended slice.
func appendRecordFrame(buf []byte, key Key, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, frameRecord)
	buf = append(buf, key[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// appendSealFrame renders the 'E' footer for a segment holding records
// frames totalling payloadBytes of payload.
func appendSealFrame(buf []byte, records, payloadBytes uint64) []byte {
	start := len(buf)
	buf = append(buf, frameSeal)
	buf = binary.AppendUvarint(buf, records)
	buf = binary.AppendUvarint(buf, payloadBytes)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// entry locates one live record inside a segment.
type entry struct {
	key Key
	// off is the byte offset of the record's frame (the kind byte).
	off int64
	// frameLen is the full frame length including kind, key, length
	// varint, payload and CRC.
	frameLen int64
	// payloadLen is the payload length alone.
	payloadLen int
}

// countingReader tracks the stream offset for error reporting.
type countingReader struct {
	r   io.Reader
	off int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.off += int64(n)
	return n, err
}

func (cr *countingReader) readFull(p []byte) error {
	_, err := io.ReadFull(cr, p)
	return err
}

// readUvarint decodes a uvarint byte-by-byte so the offset stays exact.
func (cr *countingReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if err := cr.readFull(b[:]); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			if i == binary.MaxVarintLen64-1 && b[0] > 1 {
				return 0, errors.New("uvarint overflows 64 bits")
			}
			return x | uint64(b[0])<<s, nil
		}
		x |= uint64(b[0]&0x7f) << s
		s += 7
	}
	return 0, errors.New("uvarint longer than 10 bytes")
}

// scanResult is what scanning one segment stream yields.
type scanResult struct {
	entries []entry
	// sealed reports that a valid 'E' footer closed the stream.
	sealed bool
	// validBytes is the offset just past the last fully-decoded frame —
	// the truncation point recovery uses to drop a live segment's torn
	// tail.
	validBytes int64
	// payloadBytes totals the record payload bytes decoded.
	payloadBytes uint64
}

// scanSegment decodes one segment byte stream. For a sealed segment
// (sealedWanted) the stream must close with a valid footer whose counts
// match and nothing may follow it; any anomaly — checksum mismatch,
// truncation, trailing bytes, implausible structure — is a
// *CorruptError. For a live segment a clean EOF at a frame boundary is
// normal, a torn tail is reported as a *CorruptError wrapping
// ErrTruncated with validBytes marking the recovery truncation point,
// and everything else is damage.
func scanSegment(r io.Reader, sealedWanted bool) (scanResult, error) {
	cr := &countingReader{r: r}
	var res scanResult

	var m [4]byte
	if err := cr.readFull(m[:]); err != nil {
		return res, corruptRead(cr.off, 0, err)
	}
	if m != magic {
		return res, corruptf(0, 0, "bad magic %q", m[:])
	}
	res.validBytes = cr.off

	crcBuf := make([]byte, 0, 256)
	for rec := 0; ; rec++ {
		var kind [1]byte
		if err := cr.readFull(kind[:]); err != nil {
			if errors.Is(err, io.EOF) && cr.off == res.validBytes {
				// Clean EOF at a frame boundary: the unsealed end of a live
				// segment. A sealed segment must not end here.
				if sealedWanted {
					return res, corruptf(cr.off, rec, "sealed segment has no footer: %w", ErrTruncated)
				}
				return res, nil
			}
			return res, corruptRead(cr.off, rec, err)
		}
		frameOff := cr.off - 1
		crcBuf = append(crcBuf[:0], kind[0])

		switch kind[0] {
		case frameRecord:
			var key Key
			if err := cr.readFull(key[:]); err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			crcBuf = append(crcBuf, key[:]...)
			plen, err := cr.readUvarint()
			if err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			if plen > maxPayload {
				return res, corruptf(cr.off, rec, "implausible payload length %d", plen)
			}
			crcBuf = binary.AppendUvarint(crcBuf, plen)
			payloadStart := len(crcBuf)
			crcBuf = append(crcBuf, make([]byte, plen)...)
			if err := cr.readFull(crcBuf[payloadStart:]); err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			var crc [4]byte
			if err := cr.readFull(crc[:]); err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			if got, want := crc32.ChecksumIEEE(crcBuf), binary.LittleEndian.Uint32(crc[:]); got != want {
				return res, &CorruptError{Offset: frameOff, Record: rec,
					Err: fmt.Errorf("%w (stored %#x, computed %#x)", ErrChecksum, want, got)}
			}
			res.entries = append(res.entries, entry{
				key:        key,
				off:        frameOff,
				frameLen:   cr.off - frameOff,
				payloadLen: int(plen),
			})
			res.payloadBytes += plen
			res.validBytes = cr.off

		case frameSeal:
			records, err := cr.readUvarint()
			if err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			payloadBytes, err := cr.readUvarint()
			if err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			crcBuf = binary.AppendUvarint(crcBuf, records)
			crcBuf = binary.AppendUvarint(crcBuf, payloadBytes)
			var crc [4]byte
			if err := cr.readFull(crc[:]); err != nil {
				return res, corruptRead(cr.off, rec, err)
			}
			if got, want := crc32.ChecksumIEEE(crcBuf), binary.LittleEndian.Uint32(crc[:]); got != want {
				return res, &CorruptError{Offset: frameOff, Record: rec,
					Err: fmt.Errorf("footer %w (stored %#x, computed %#x)", ErrChecksum, want, got)}
			}
			if records != uint64(len(res.entries)) || payloadBytes != res.payloadBytes {
				return res, corruptf(frameOff, rec,
					"footer records %d frames / %d payload bytes, segment carried %d / %d",
					records, payloadBytes, len(res.entries), res.payloadBytes)
			}
			// Nothing may follow the footer.
			var trail [1]byte
			if err := cr.readFull(trail[:]); !errors.Is(err, io.EOF) {
				if err != nil {
					return res, corruptRead(cr.off, rec, err)
				}
				return res, corruptf(cr.off, rec, "trailing bytes after seal footer")
			}
			res.sealed = true
			res.validBytes = cr.off
			return res, nil

		default:
			return res, corruptf(frameOff, rec, "unknown frame kind %#x", kind[0])
		}
	}
}

// readRecordPayload re-reads and re-verifies one record frame at a known
// location (ReaderAt + entry) and returns its payload. Every Get goes
// through this check: a record is CRC-verified on every read, never just
// at recovery, so damage that appears after startup is still caught
// before a byte of it is served.
func readRecordPayload(r io.ReaderAt, e entry) ([]byte, error) {
	frame := make([]byte, e.frameLen)
	if _, err := r.ReadAt(frame, e.off); err != nil {
		return nil, corruptRead(e.off, 0, err)
	}
	if frame[0] != frameRecord {
		return nil, corruptf(e.off, 0, "frame kind %#x, want record", frame[0])
	}
	stored := binary.LittleEndian.Uint32(frame[e.frameLen-4:])
	if got := crc32.ChecksumIEEE(frame[:e.frameLen-4]); got != stored {
		return nil, &CorruptError{Offset: e.off,
			Err: fmt.Errorf("%w (stored %#x, computed %#x)", ErrChecksum, stored, got)}
	}
	var key Key
	copy(key[:], frame[1:1+KeySize])
	if key != e.key {
		return nil, corruptf(e.off, 0, "record key %s does not match index key %s", key, e.key)
	}
	plen, n := binary.Uvarint(frame[1+KeySize:])
	if n <= 0 || plen != uint64(e.payloadLen) {
		return nil, corruptf(e.off, 0, "record length %d does not match index length %d", plen, e.payloadLen)
	}
	start := 1 + KeySize + n
	return frame[start : start+int(plen)], nil
}
