// Package store is the durable result store: an append-only,
// content-addressed, checksummed cache of simulation results that
// survives daemon restarts. It sits under rescache as a second tier in
// mtserve and mtcoord (-store-dir): a rescache miss probes the store
// before paying for a recompute, so a restarted daemon warm-starts from
// disk instead of redoing sweeps it already proved correct.
//
// On disk the store is a directory of MTS1 segments (see format.go).
// Writes are write-behind: Put enqueues into a bounded in-memory queue
// and a flusher goroutine appends batches to the live segment; once the
// live segment crosses the size threshold it is sealed — footer, fsync,
// atomic rename from .open to .mts — and a fresh one started. Background
// compaction merges many sealed segments into one, itself crash-safe:
// the compacted segment is fully written and synced under a temporary
// name before any old segment is unlinked, so a crash at any instant
// leaves either the olds, or the olds plus a duplicate-keyed new segment
// (deduplicated first-wins at the next Open — identical bytes either
// way, because keys are content addresses).
//
// Robustness contract: the store never panics on damaged input and never
// serves a damaged byte. Every record is CRC-verified on every read, not
// just at startup. Any anomaly — checksum mismatch, torn frame, bad
// footer, impossible length — is reported as a typed *CorruptError
// internally, the offending segment is renamed aside to *.quarantined,
// and the lookup becomes a miss: the caller recomputes, exactly as if
// the cell had never been cached. The only exception is the expected
// crash signature of a live segment (torn tail after kill -9), which is
// truncated at the last valid frame boundary and the prefix kept, the
// same discipline as the MTJ1 journal.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Options configures Open. The zero value of every field except Dir gets
// a sensible default.
type Options struct {
	// Dir is the store directory (created if missing). Required.
	Dir string
	// SegmentBytes seals the live segment once it grows past this many
	// bytes. Default 4 MiB.
	SegmentBytes int64
	// QueueDepth bounds the write-behind queue (records, not bytes).
	// When the queue is full Put drops the record and counts it — the
	// store is a cache, so dropping under pressure is always safe.
	// Default 1024.
	QueueDepth int
	// CompactAfter triggers background compaction once more than this
	// many sealed segments exist. Default 8.
	CompactAfter int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 8
	}
	return o
}

// Stats is a point-in-time snapshot of store effectiveness and health.
// The robustness counters (Quarantined, TruncatedTails, WriteErrors) are
// the observable half of the never-crash contract: damage shows up here
// and in the metrics, not as a panic or a wrong answer.
type Stats struct {
	Entries        int    `json:"entries"`
	SealedSegments int    `json:"sealed_segments"`
	PendingWrites  int    `json:"pending_writes"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	DupPuts        uint64 `json:"dup_puts"`
	Dropped        uint64 `json:"dropped"`
	WriteErrors    uint64 `json:"write_errors"`
	Quarantined    uint64 `json:"quarantined"`
	TruncatedTails uint64 `json:"truncated_tails"`
	Compactions    uint64 `json:"compactions"`
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ref locates one live record: which segment, and where inside it.
type ref struct {
	seg int64
	e   entry
}

// pendingRec is one queued write-behind record.
type pendingRec struct {
	key     Key
	payload []byte
}

// Store is the durable result store. Safe for concurrent use. All
// mutable state is guarded by mu; the flusher goroutine and every API
// caller go through the same lock, so reads never observe a
// half-applied write and the census has a single guard to prove.
type Store struct {
	opts Options
	dir  string

	mu sync.Mutex
	// index maps content address -> record location. Rebuilt from the
	// segment scan at Open.
	index map[Key]ref
	// segs holds the open sealed-segment files, keyed by segment id.
	segs map[int64]*os.File
	// active is the live .open segment the flusher appends to.
	active     *os.File
	activeID   int64
	activeSize int64
	// activeRecs / activePayload accumulate the footer cross-check
	// counts for the live segment.
	activeRecs    uint64
	activePayload uint64
	nextID        int64
	// pending is the bounded write-behind queue; pendingIdx indexes it
	// by key so Get sees queued records and Put dedupes against them.
	pending    []pendingRec
	pendingIdx map[Key]int
	closed     bool

	hits           uint64
	misses         uint64
	puts           uint64
	dupPuts        uint64
	dropped        uint64
	writeErrors    uint64
	quarantined    uint64
	truncatedTails uint64
	compactions    uint64

	// wake nudges the flusher (buffered, never blocks); stop asks it to
	// exit; done closes when it has.
	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

func segName(id int64) string  { return fmt.Sprintf("seg-%08d.mts", id) }
func openName(id int64) string { return fmt.Sprintf("seg-%08d.open", id) }
func parseSeg(name, ext string) (int64, bool) {
	var id int64
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	num, ok := strings.CutSuffix(rest, ext)
	if !ok || len(num) != 8 {
		return 0, false
	}
	for _, c := range num {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int64(c-'0')
	}
	return id, true
}

// Open opens (or creates) the store at opts.Dir, recovering its index by
// scanning every segment. Recovery never fails on damaged segments —
// they are quarantined and counted — so the only errors Open returns are
// environmental (directory cannot be created, files cannot be opened).
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	s := &Store{
		opts:       opts,
		dir:        opts.Dir,
		index:      make(map[Key]ref),
		segs:       make(map[int64]*os.File),
		pendingIdx: make(map[Key]int),
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	// Recovery runs under mu even though the flusher has not started and
	// the store is not yet published: the lock is uncontended, and it
	// keeps the guard invariant uniform — every write to the index,
	// segment table and live-segment state happens with mu held, with no
	// pre-publication special case for the shared-state census to excuse.
	s.mu.Lock()
	err := s.recover()
	if err == nil {
		err = s.openActive()
	}
	if err != nil {
		s.closeFiles()
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()
	go s.flusher()
	return s, nil
}

// recover rebuilds the index from disk: delete compaction leftovers,
// scan sealed segments (quarantining any anomaly), then recover live
// segments (truncating torn tails, quarantining interior damage) and
// seal the survivors. Caller (Open) holds mu.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var sealed, live []int64
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".compact"):
			// A compaction that never completed its rename: the olds are
			// all still present, so the partial output is garbage.
			os.Remove(filepath.Join(s.dir, name))
		default:
			if id, ok := parseSeg(name, ".mts"); ok {
				sealed = append(sealed, id)
			} else if id, ok := parseSeg(name, ".open"); ok {
				live = append(live, id)
			}
		}
	}
	sort.Slice(sealed, func(i, j int) bool { return sealed[i] < sealed[j] })
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })

	for _, id := range sealed {
		if id >= s.nextID {
			s.nextID = id + 1
		}
		path := filepath.Join(s.dir, segName(id))
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		res, scanErr := scanSegment(f, true)
		if scanErr != nil {
			f.Close()
			s.quarantine(path)
			continue
		}
		s.adopt(id, res.entries)
		s.segs[id] = f
	}

	for _, id := range live {
		if id >= s.nextID {
			s.nextID = id + 1
		}
		if err := s.recoverLive(id); err != nil {
			return err
		}
	}
	return nil
}

// recoverLive recovers one .open segment left by a previous process: a
// torn tail (the expected kill -9 signature) is truncated away and the
// valid prefix kept; interior damage quarantines the whole file; a
// recovered non-empty segment is sealed in place so every surviving
// record is footer-protected from here on.
func (s *Store) recoverLive(id int64) error {
	path := filepath.Join(s.dir, openName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	res, scanErr := scanSegment(f, false)
	if scanErr != nil {
		var ce *CorruptError
		if errors.As(scanErr, &ce) && errors.Is(ce.Err, ErrTruncated) && res.validBytes > int64(len(magic)) {
			// Torn tail with a usable prefix: drop the tail, keep the rest.
			if err := f.Truncate(res.validBytes); err != nil {
				f.Close()
				return fmt.Errorf("store: %w", err)
			}
			s.truncatedTails++
		} else {
			// Interior damage, a torn tail with nothing before it, or a
			// file too short to carry its magic: quarantine / discard.
			f.Close()
			if res.validBytes <= int64(len(magic)) && len(res.entries) == 0 {
				os.Remove(path)
			} else {
				s.quarantine(path)
			}
			return nil
		}
	}
	if len(res.entries) == 0 {
		f.Close()
		os.Remove(path)
		return nil
	}
	// Seal the recovered segment: footer over the surviving records,
	// fsync, atomic rename to its .mts name.
	var payload uint64
	for _, e := range res.entries {
		payload += uint64(e.payloadLen)
	}
	foot := appendSealFrame(nil, uint64(len(res.entries)), payload)
	if _, err := f.WriteAt(foot, res.validBytes); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	final := filepath.Join(s.dir, segName(id))
	if err := os.Rename(path, final); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.dir)
	s.adopt(id, res.entries)
	s.segs[id] = f
	return nil
}

// adopt merges one scanned segment's entries into the index,
// first-wins: when the same content address appears in more than one
// segment (possible only after a crash between a compaction rename and
// its unlinks) the earlier segment keeps the record — the bytes are
// identical by content addressing, so either choice is correct.
func (s *Store) adopt(id int64, entries []entry) {
	for _, e := range entries {
		if _, ok := s.index[e.key]; !ok {
			s.index[e.key] = ref{seg: id, e: e}
		}
	}
}

// quarantine renames a damaged segment aside (path -> path.quarantined,
// with a numeric suffix if that name is taken) so it is out of the scan
// set but preserved for inspection. Never fails loudly: if even the
// rename fails the file is removed — a damaged segment must not be
// rescanned as live data.
func (s *Store) quarantine(path string) {
	target := path + ".quarantined"
	for i := 1; ; i++ {
		if _, err := os.Lstat(target); os.IsNotExist(err) {
			break
		}
		target = fmt.Sprintf("%s.quarantined.%d", path, i)
	}
	if err := os.Rename(path, target); err != nil {
		os.Remove(path)
	}
	syncDir(s.dir)
	s.quarantined++
}

// openActive starts a fresh live segment.
func (s *Store) openActive() error {
	id := s.nextID
	s.nextID++
	f, err := os.OpenFile(filepath.Join(s.dir, openName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.activeID = id
	s.activeSize = int64(len(magic))
	s.activeRecs = 0
	s.activePayload = 0
	return nil
}

// closeFiles closes every open file handle (failed-Open cleanup path).
func (s *Store) closeFiles() {
	for _, f := range s.segs {
		f.Close()
	}
	if s.active != nil {
		s.active.Close()
	}
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort: not every platform supports it, and a missed
// directory sync degrades durability, not correctness.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Get returns the payload stored under k, or nil, false on a miss. The
// record's CRC is verified on every read; if the verification fails the
// whole segment is quarantined, the lookup becomes a miss, and the
// caller recomputes — a damaged byte is never served.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	if i, ok := s.pendingIdx[k]; ok {
		s.hits++
		return append([]byte(nil), s.pending[i].payload...), true
	}
	r, ok := s.index[k]
	if !ok {
		s.misses++
		return nil, false
	}
	f := s.fileFor(r.seg)
	if f == nil {
		// Segment vanished under us (quarantined by a concurrent Get).
		delete(s.index, k)
		s.misses++
		return nil, false
	}
	payload, err := readRecordPayload(f, r.e)
	if err != nil {
		s.quarantineSegLocked(r.seg)
		s.misses++
		return nil, false
	}
	s.hits++
	return payload, true
}

// Len returns the number of stored records (indexed + queued).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index) + len(s.pending)
}

// fileFor resolves a segment id to its open file. Caller holds mu.
func (s *Store) fileFor(id int64) *os.File {
	if id == s.activeID {
		return s.active
	}
	return s.segs[id]
}

// quarantineSegLocked takes a damaged segment out of service at runtime:
// every index entry pointing into it is dropped, the file is renamed
// aside, and — if it was the live segment — a fresh one is started.
// Caller holds mu.
func (s *Store) quarantineSegLocked(id int64) {
	for k, r := range s.index {
		if r.seg == id {
			delete(s.index, k)
		}
	}
	if id == s.activeID && s.active != nil {
		s.active.Close()
		s.active = nil
		s.quarantine(filepath.Join(s.dir, openName(id)))
		if err := s.openActive(); err != nil {
			s.writeErrors++
		}
		return
	}
	if f, ok := s.segs[id]; ok {
		f.Close()
		delete(s.segs, id)
		s.quarantine(filepath.Join(s.dir, segName(id)))
	}
}

// Put enqueues payload under k for write-behind persistence. Duplicate
// keys are dropped (content addressing: equal key means equal bytes);
// when the bounded queue is full the record is dropped and counted —
// never blocks the serving path. The payload is copied.
func (s *Store) Put(k Key, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("store: payload %d bytes exceeds limit %d", len(payload), maxPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[k]; ok {
		s.dupPuts++
		return nil
	}
	if _, ok := s.pendingIdx[k]; ok {
		s.dupPuts++
		return nil
	}
	if len(s.pending) >= s.opts.QueueDepth {
		s.dropped++
		return nil
	}
	s.pending = append(s.pending, pendingRec{key: k, payload: append([]byte(nil), payload...)})
	s.pendingIdx[k] = len(s.pending) - 1
	s.puts++
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return nil
}

// flusher is the write-behind goroutine: it drains the pending queue
// into the live segment, seals segments past the size threshold, and
// compacts when sealed segments pile up.
func (s *Store) flusher() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
			s.mu.Lock()
			s.flushLocked()
			s.maybeCompactLocked()
			s.mu.Unlock()
		}
	}
}

// flushLocked appends every pending record to the live segment and
// indexes it, sealing and rotating the segment whenever it crosses the
// size threshold. Write failures abandon the live segment (quarantined,
// records re-dropped) rather than risking a glued-torn-frame file.
// Caller holds mu.
func (s *Store) flushLocked() {
	for len(s.pending) > 0 {
		if s.active == nil {
			if err := s.openActive(); err != nil {
				s.writeErrors++
				s.dropped += uint64(len(s.pending))
				s.pending = nil
				s.pendingIdx = make(map[Key]int)
				return
			}
		}
		batch := s.pending
		s.pending = nil
		s.pendingIdx = make(map[Key]int)
		var buf []byte
		var recs, payload uint64
		var entries []entry
		off := s.activeSize
		for _, p := range batch {
			start := len(buf)
			buf = appendRecordFrame(buf, p.key, p.payload)
			entries = append(entries, entry{
				key:        p.key,
				off:        off + int64(start),
				frameLen:   int64(len(buf) - start),
				payloadLen: len(p.payload),
			})
			recs++
			payload += uint64(len(p.payload))
		}
		if _, err := s.active.Write(buf); err != nil {
			// The file may now hold a partial frame; appending more would
			// bury a torn frame mid-segment. Quarantine and start fresh.
			s.writeErrors++
			s.dropped += recs
			s.quarantineSegLocked(s.activeID)
			return
		}
		s.activeSize += int64(len(buf))
		s.activeRecs += recs
		s.activePayload += payload
		for _, e := range entries {
			if _, ok := s.index[e.key]; !ok {
				s.index[e.key] = ref{seg: s.activeID, e: e}
			}
		}
		if s.activeSize >= s.opts.SegmentBytes {
			s.sealActiveLocked()
		}
	}
}

// sealActiveLocked seals the live segment — footer, fsync, atomic rename
// to .mts — and starts a fresh one. Caller holds mu.
func (s *Store) sealActiveLocked() {
	if s.active == nil {
		return
	}
	if s.activeRecs == 0 {
		// Nothing in it; keep appending rather than sealing an empty file.
		return
	}
	foot := appendSealFrame(nil, s.activeRecs, s.activePayload)
	if _, err := s.active.Write(foot); err != nil {
		s.writeErrors++
		s.quarantineSegLocked(s.activeID)
		return
	}
	if err := s.active.Sync(); err != nil {
		s.writeErrors++
		s.quarantineSegLocked(s.activeID)
		return
	}
	id := s.activeID
	if err := os.Rename(filepath.Join(s.dir, openName(id)), filepath.Join(s.dir, segName(id))); err != nil {
		s.writeErrors++
		s.quarantineSegLocked(id)
		return
	}
	syncDir(s.dir)
	s.segs[id] = s.active
	s.active = nil
	if err := s.openActive(); err != nil {
		s.writeErrors++
	}
}

// maybeCompactLocked merges all sealed segments into one once more than
// CompactAfter of them exist. Crash-safe by construction: the merged
// segment is fully written and fsynced under a .compact temporary name,
// atomically renamed to a fresh .mts id, and only then are the old
// segments unlinked. A crash before the rename leaves the olds intact
// plus a garbage temporary (deleted at next Open); a crash after the
// rename but before the unlinks leaves duplicate keys, deduplicated
// first-wins at next Open. Caller holds mu.
func (s *Store) maybeCompactLocked() {
	if len(s.segs) <= s.opts.CompactAfter {
		return
	}
	// Deterministic output: records sorted by content address, never map
	// order.
	type item struct {
		key Key
		r   ref
	}
	var items []item
	for k, r := range s.index {
		if r.seg != s.activeID {
			items = append(items, item{key: k, r: r})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		return string(items[i].key[:]) < string(items[j].key[:])
	})

	id := s.nextID
	s.nextID++
	tmpPath := filepath.Join(s.dir, segName(id)+".compact")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		s.writeErrors++
		return
	}
	abort := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	buf := append([]byte(nil), magic[:]...)
	var written int64 // bytes already drained to tmp
	var entries []entry
	var recs, payload uint64
	for _, it := range items {
		f := s.segs[it.r.seg]
		if f == nil {
			continue
		}
		pl, err := readRecordPayload(f, it.r.e)
		if err != nil {
			// A sealed segment went bad after its Open-time scan:
			// quarantine it, drop its records from this compaction (and
			// the index), and keep going — compaction must not abort on
			// damage it exists to clean up.
			s.quarantineSegLocked(it.r.seg)
			continue
		}
		start := written + int64(len(buf))
		buf = appendRecordFrame(buf, it.key, pl)
		entries = append(entries, entry{
			key:        it.key,
			off:        start,
			frameLen:   written + int64(len(buf)) - start,
			payloadLen: len(pl),
		})
		recs++
		payload += uint64(len(pl))
		if len(buf) >= 1<<20 {
			if _, err := tmp.Write(buf); err != nil {
				s.writeErrors++
				abort()
				return
			}
			written += int64(len(buf))
			buf = buf[:0]
		}
	}
	buf = appendSealFrame(buf, recs, payload)
	if _, err := tmp.Write(buf); err != nil {
		s.writeErrors++
		abort()
		return
	}
	if err := tmp.Sync(); err != nil {
		s.writeErrors++
		abort()
		return
	}
	final := filepath.Join(s.dir, segName(id))
	if err := os.Rename(tmpPath, final); err != nil {
		s.writeErrors++
		abort()
		return
	}
	syncDir(s.dir)
	// Point of no return: the compacted segment is durable. Swap the
	// index over, then retire the olds.
	oldIDs := make([]int64, 0, len(s.segs))
	for oid := range s.segs {
		oldIDs = append(oldIDs, oid)
	}
	sort.Slice(oldIDs, func(i, j int) bool { return oldIDs[i] < oldIDs[j] })
	s.segs[id] = tmp
	for _, e := range entries {
		s.index[e.key] = ref{seg: id, e: e}
	}
	for _, oid := range oldIDs {
		if f := s.segs[oid]; f != nil {
			f.Close()
		}
		delete(s.segs, oid)
		os.Remove(filepath.Join(s.dir, segName(oid)))
	}
	syncDir(s.dir)
	s.compactions++
}

// Flush synchronously drains the write-behind queue and fsyncs the live
// segment, so everything Put before the call survives a crash after it.
// The graceful-drain path (SIGTERM) calls this before exit.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.flushLocked()
	s.maybeCompactLocked()
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			s.writeErrors++
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Compact forces a compaction pass regardless of the sealed-segment
// threshold (seals the live segment first so everything participates).
// Exposed for tests and operational tooling.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.flushLocked()
	s.sealActiveLocked()
	saved := s.opts.CompactAfter
	s.opts.CompactAfter = 0
	s.maybeCompactLocked()
	s.opts.CompactAfter = saved
}

// Close drains the queue, seals the live segment and closes every file.
// After a clean Close the directory holds only sealed, footer-protected
// segments, so the next Open recovers with zero truncation or
// quarantine. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	<-s.done

	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.sealActiveLocked()
	if s.active != nil {
		// Seal declined (empty segment): remove the empty .open file.
		s.active.Close()
		os.Remove(filepath.Join(s.dir, openName(s.activeID)))
		s.active = nil
	}
	for _, f := range s.segs {
		f.Close()
	}
	s.segs = make(map[int64]*os.File)
	s.index = make(map[Key]ref)
	return nil
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:        len(s.index) + len(s.pending),
		SealedSegments: len(s.segs),
		PendingWrites:  len(s.pending),
		Hits:           s.hits,
		Misses:         s.misses,
		Puts:           s.puts,
		DupPuts:        s.dupPuts,
		Dropped:        s.dropped,
		WriteErrors:    s.writeErrors,
		Quarantined:    s.quarantined,
		TruncatedTails: s.truncatedTails,
		Compactions:    s.compactions,
	}
}

// Verify scans one segment byte stream and returns the number of intact
// records, reporting any anomaly as a *CorruptError with byte offset.
// sealed selects the stricter contract (mandatory matching footer).
// Exposed for the resilience fault matrix and offline tooling.
func Verify(r io.Reader, sealed bool) (int, error) {
	res, err := scanSegment(r, sealed)
	return len(res.entries), err
}
