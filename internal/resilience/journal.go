package resilience

import (
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Journal is an append-only, crash-safe record of completed work units.
// cmd/experiments writes one record per finished sweep section so an
// interrupted sweep can -resume without re-simulating what already ran.
//
// On-disk format ("MTJ1"), one record per line:
//
//	MTJ1 <crc32-hex> <quoted key> <quoted value>\n
//
// The CRC32 (IEEE, hex) covers `<quoted key> <quoted value>`. Keys and
// values are strconv-quoted, so keys containing spaces ("Table 1") and
// arbitrary values survive. The first record is the binding: key
// "journal-binding", value describing the run configuration; Open
// refuses to resume against a journal written under a different binding,
// because skipping sections from a different sweep would silently mix
// configurations.
//
// Each Record is followed by Sync, so a completed record survives a
// crash. A torn final line (killed mid-append) is tolerated and dropped
// at Open; a damaged record anywhere else fails loudly.
type Journal struct {
	f    *os.File
	path string
	done map[string]string
}

const (
	journalMagic = "MTJ1"
	// bindingKey is the reserved key of the mandatory first record.
	bindingKey = "journal-binding"
)

// formatRecord renders one journal line (without trailing newline).
func formatRecord(key, value string) string {
	body := strconv.Quote(key) + " " + strconv.Quote(value)
	return fmt.Sprintf("%s %08x %s", journalMagic, crc32.ChecksumIEEE([]byte(body)), body)
}

// parseRecord decodes one journal line.
func parseRecord(line string) (key, value string, err error) {
	rest, ok := strings.CutPrefix(line, journalMagic+" ")
	if !ok {
		return "", "", fmt.Errorf("bad record prefix")
	}
	crcHex, body, ok := strings.Cut(rest, " ")
	if !ok {
		return "", "", fmt.Errorf("missing record body")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return "", "", fmt.Errorf("bad record checksum field: %v", err)
	}
	if got := crc32.ChecksumIEEE([]byte(body)); got != uint32(want) {
		return "", "", fmt.Errorf("record checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	quotedKey, err := strconv.QuotedPrefix(body)
	if err != nil {
		return "", "", fmt.Errorf("bad record key: %v", err)
	}
	if key, err = strconv.Unquote(quotedKey); err != nil {
		return "", "", fmt.Errorf("bad record key: %v", err)
	}
	tail, ok := strings.CutPrefix(body[len(quotedKey):], " ")
	if !ok {
		return "", "", fmt.Errorf("missing record value")
	}
	value, err = strconv.Unquote(tail)
	if err != nil {
		return "", "", fmt.Errorf("bad record value: %v", err)
	}
	return key, value, nil
}

// OpenJournal opens (or creates) the journal at path for a run with the
// given binding. A fresh journal gets the binding as its first record. An
// existing journal is replayed: its completed records become Done
// entries, a torn final line is dropped, and a binding mismatch or a
// damaged interior record is an error — resuming against the wrong
// journal must fail, not silently skip foreign sections.
func OpenJournal(path, binding string) (*Journal, error) {
	j := &Journal{path: path, done: make(map[string]string)}

	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh journal.
	case err != nil:
		return nil, fmt.Errorf("resilience: journal %s: %w", path, err)
	default:
		if err := j.replay(string(data), binding); err != nil {
			return nil, fmt.Errorf("resilience: journal %s: %w", path, err)
		}
		// Physically drop a torn tail before appending, or the next
		// record would be glued onto the partial one.
		if valid := strings.LastIndexByte(string(data), '\n') + 1; valid != len(data) {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("resilience: journal %s: %w", path, err)
			}
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: journal %s: %w", path, err)
	}
	j.f = f
	if len(j.done) == 0 {
		// Fresh (or fully torn) journal: write the binding record.
		if err := j.append(bindingKey, binding); err != nil {
			f.Close()
			return nil, err
		}
		j.done[bindingKey] = binding
	}
	return j, nil
}

// replay loads an existing journal's records.
func (j *Journal) replay(data, binding string) error {
	lines := strings.Split(data, "\n")
	// A file killed mid-append may end in a partial record: everything
	// after the final newline is the torn tail and is dropped. (With a
	// trailing newline the last element is "", dropped the same way.)
	lines = lines[:len(lines)-1]
	for i, line := range lines {
		key, value, err := parseRecord(line)
		if err != nil {
			return fmt.Errorf("record %d: %w", i+1, err)
		}
		if i == 0 {
			if key != bindingKey {
				return fmt.Errorf("first record is %q, not the binding", key)
			}
			if value != binding {
				return fmt.Errorf("binding mismatch: journal written for %q, this run is %q", value, binding)
			}
		}
		j.done[key] = value
	}
	return nil
}

// append writes one record and syncs it to stable storage.
func (j *Journal) append(key, value string) error {
	if _, err := j.f.WriteString(formatRecord(key, value) + "\n"); err != nil {
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	return nil
}

// Done reports whether key was recorded complete, and its value.
func (j *Journal) Done(key string) (string, bool) {
	if key == bindingKey {
		return "", false
	}
	v, ok := j.done[key]
	return v, ok
}

// Len returns the number of completed records (excluding the binding).
func (j *Journal) Len() int { return len(j.done) - 1 }

// Each calls fn for every completed record (excluding the binding) in
// sorted key order — the deterministic iteration a replaying consumer
// (e.g. the cluster coordinator's crash recovery) wants.
func (j *Journal) Each(fn func(key, value string)) {
	keys := make([]string, 0, len(j.done))
	for k := range j.done {
		if k != bindingKey {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, j.done[k])
	}
}

// Record marks key complete with the given value (typically a content
// checksum of the section's output) and syncs before returning: once
// Record returns, a crash cannot un-complete the section.
func (j *Journal) Record(key, value string) error {
	if key == bindingKey {
		return fmt.Errorf("resilience: journal key %q is reserved", key)
	}
	if err := j.append(key, value); err != nil {
		return err
	}
	j.done[key] = value
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
