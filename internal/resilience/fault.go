// Package resilience is the simulator's robustness layer: deterministic
// I/O fault injection for proving the trace pipeline detects corruption
// (fault.go), a crash-safe journal of completed sweep sections behind
// cmd/experiments' -resume (journal.go), and a runtime divergence guard
// that benches the fast engine and falls back to the reference engine if
// the two ever disagree on a sampled cell (guard.go).
//
// Nothing here sits on a simulation hot path: faults are injected at I/O
// boundaries, the journal is touched once per sweep section, and the
// divergence guard adds work only on the sampled cells it re-simulates.
package resilience

import (
	"errors"
	"fmt"
	"io"
)

// FaultClass enumerates the injectable I/O fault classes. Each models a
// real failure the pipeline must survive loudly: flipped bits (disk or
// transfer damage), truncation (crashed writer, partial copy), duplicated
// ranges (retried writes, bad splices), fragmented short reads (which are
// legal and must be harmless), and delayed hard errors (a device failing
// mid-stream).
type FaultClass int

const (
	// BitFlip XORs one bit at Offset.
	BitFlip FaultClass = iota
	// Truncate ends the stream cleanly after Offset bytes.
	Truncate
	// DupRead re-delivers Count already-delivered bytes at Offset
	// (duplicated range).
	DupRead
	// ShortRead fragments delivery into single-byte reads from Offset on.
	// It corrupts nothing: a correct reader must produce identical
	// results, which the fault matrix asserts.
	ShortRead
	// ErrAfter fails hard with ErrInjected after Offset bytes.
	ErrAfter
	// NumFaultClasses is the number of fault classes.
	NumFaultClasses
)

// String names the fault class.
func (c FaultClass) String() string {
	switch c {
	case BitFlip:
		return "bit-flip"
	case Truncate:
		return "truncate"
	case DupRead:
		return "dup-read"
	case ShortRead:
		return "short-read"
	case ErrAfter:
		return "err-after"
	}
	return "unknown"
}

// Corrupts reports whether the class damages stream contents (as opposed
// to fragmenting delivery, which is legal io.Reader behavior).
func (c FaultClass) Corrupts() bool { return c != ShortRead }

// ErrInjected is the root cause carried by ErrAfter faults; it survives
// wrapping, so tests assert errors.Is(err, ErrInjected) through the
// trace layer's CorruptError chain.
var ErrInjected = errors.New("resilience: injected I/O fault")

// Fault describes one deterministic fault.
type Fault struct {
	// Class selects the corruption mechanism.
	Class FaultClass
	// Offset is the byte offset at which the fault engages.
	Offset int64
	// Bit selects the bit to flip for BitFlip (0-7).
	Bit uint8
	// Count is the number of duplicated bytes for DupRead (default 1).
	Count int64
}

// String renders the fault for test names and diagnostics.
func (f Fault) String() string {
	switch f.Class {
	case BitFlip:
		return fmt.Sprintf("bit-flip@%d.%d", f.Offset, f.Bit)
	case DupRead:
		return fmt.Sprintf("dup-read@%d+%d", f.Offset, f.dupCount())
	default:
		return fmt.Sprintf("%s@%d", f.Class, f.Offset)
	}
}

func (f Fault) dupCount() int64 {
	if f.Count <= 0 {
		return 1
	}
	return f.Count
}

// FaultingReader wraps an io.Reader and applies one Fault to the byte
// stream it delivers. The corruption is a pure function of (stream,
// fault): re-reading with the same fault yields the same damaged bytes,
// so every fault-matrix case is reproducible from its seed.
type FaultingReader struct {
	r     io.Reader
	fault Fault
	off   int64 // bytes delivered so far
	// window holds the trailing delivered bytes DupRead may need to
	// replay; only maintained for DupRead faults.
	window []byte
	// dup is the pending duplicated range still to deliver.
	dup []byte
}

// NewFaultingReader wraps r with fault f.
func NewFaultingReader(r io.Reader, f Fault) *FaultingReader {
	return &FaultingReader{r: r, fault: f}
}

// Read implements io.Reader, applying the configured fault.
func (fr *FaultingReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f := fr.fault
	switch f.Class {
	case Truncate:
		if fr.off >= f.Offset {
			return 0, io.EOF
		}
		if max := f.Offset - fr.off; int64(len(p)) > max {
			p = p[:max]
		}
	case ErrAfter:
		if fr.off >= f.Offset {
			return 0, ErrInjected
		}
		if max := f.Offset - fr.off; int64(len(p)) > max {
			p = p[:max]
		}
	case ShortRead:
		if fr.off >= f.Offset {
			p = p[:1]
		}
	case DupRead:
		if len(fr.dup) > 0 {
			n := copy(p, fr.dup)
			fr.dup = fr.dup[n:]
			fr.off += int64(n)
			return n, nil
		}
		if max := f.Offset - fr.off; max > 0 && int64(len(p)) > max {
			// Stop exactly at the duplication point.
			p = p[:max]
		}
	}

	n, err := fr.r.Read(p)
	if n > 0 {
		switch f.Class {
		case BitFlip:
			if i := f.Offset - fr.off; i >= 0 && i < int64(n) {
				p[i] ^= 1 << (f.Bit & 7)
			}
		case DupRead:
			fr.window = append(fr.window, p[:n]...)
			if keep := f.dupCount(); int64(len(fr.window)) > keep {
				fr.window = fr.window[int64(len(fr.window))-keep:]
			}
			if fr.off < f.Offset && fr.off+int64(n) >= f.Offset {
				// The next delivery replays the trailing window.
				fr.dup = append([]byte(nil), fr.window...)
			}
		}
		fr.off += int64(n)
	}
	return n, err
}

// FaultingWriter wraps an io.Writer and applies one Fault to the byte
// stream written through it. Truncate silently discards everything past
// Offset (a crashed writer); ErrAfter fails the write call that crosses
// Offset; BitFlip damages the byte at Offset in transit. ShortRead and
// DupRead are read-side classes and are inert on the write path.
type FaultingWriter struct {
	w     io.Writer
	fault Fault
	off   int64
}

// NewFaultingWriter wraps w with fault f.
func NewFaultingWriter(w io.Writer, f Fault) *FaultingWriter {
	return &FaultingWriter{w: w, fault: f}
}

// Write implements io.Writer, applying the configured fault.
func (fw *FaultingWriter) Write(p []byte) (int, error) {
	f := fw.fault
	switch f.Class {
	case Truncate:
		if fw.off >= f.Offset {
			fw.off += int64(len(p))
			return len(p), nil // swallowed
		}
		if max := f.Offset - fw.off; int64(len(p)) > max {
			n, err := fw.w.Write(p[:max])
			fw.off += int64(n)
			if err != nil {
				return n, err
			}
			fw.off += int64(len(p)) - max
			return len(p), nil
		}
	case ErrAfter:
		if fw.off+int64(len(p)) > f.Offset {
			return 0, ErrInjected
		}
	case BitFlip:
		if i := f.Offset - fw.off; i >= 0 && i < int64(len(p)) {
			cp := append([]byte(nil), p...)
			cp[i] ^= 1 << (f.Bit & 7)
			p = cp
		}
	}
	n, err := fw.w.Write(p)
	fw.off += int64(n)
	return n, err
}
