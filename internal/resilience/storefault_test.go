package resilience_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/resilience"
	"repro/internal/store"
)

// sealedSegment builds one sealed MTS1 segment through the store's own
// write path and returns its bytes plus the keys it holds.
func sealedSegment(t *testing.T) ([]byte, []store.Key) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	keys := []store.Key{{0x01}, {0x02}, {0x03}}
	payloads := [][]byte{
		[]byte(`{"v":1,"key":"01","result":{"speedup":3.14}}`),
		bytes.Repeat([]byte{0xA5}, 200),
		{}, // empty payload is legal and must survive the matrix too
	}
	for i, k := range keys {
		if err := st.Put(k, payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // drains, seals, fsyncs
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.mts"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one sealed segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	return data, keys
}

// TestStoreFaultMatrix is the satellite contract: every corrupting fault
// class, at every byte offset of a sealed MTS1 segment, is detected by
// Verify as a typed *CorruptError — zero silent corruption — while the
// harmless class (short reads) changes nothing.
func TestStoreFaultMatrix(t *testing.T) {
	data, _ := sealedSegment(t)
	n := int64(len(data))

	intact, err := store.Verify(bytes.NewReader(data), true)
	if err != nil {
		t.Fatalf("pristine segment rejected: %v", err)
	}
	if intact != 3 {
		t.Fatalf("pristine segment holds %d records, want 3", intact)
	}

	var cases []resilience.Fault
	for off := int64(0); off < n; off++ {
		cases = append(cases,
			resilience.Fault{Class: resilience.BitFlip, Offset: off, Bit: uint8(off % 8)},
			resilience.Fault{Class: resilience.Truncate, Offset: off},
			resilience.Fault{Class: resilience.ErrAfter, Offset: off},
		)
		if off > 0 {
			// DupRead engages when delivery crosses Offset; offset 0 never
			// crosses, so the matrix starts at 1.
			cases = append(cases,
				resilience.Fault{Class: resilience.DupRead, Offset: off},
				resilience.Fault{Class: resilience.DupRead, Offset: off, Count: 7},
			)
		}
	}

	for _, f := range cases {
		fr := resilience.NewFaultingReader(bytes.NewReader(data), f)
		_, err := store.Verify(fr, true)
		if err == nil {
			t.Errorf("%s: corruption served silently", f)
			continue
		}
		var ce *store.CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *store.CorruptError", f, err)
			continue
		}
		if ce.Offset < 0 {
			t.Errorf("%s: negative damage offset %d", f, ce.Offset)
		}
		if f.Class == resilience.ErrAfter && !errors.Is(err, resilience.ErrInjected) {
			t.Errorf("%s: injected root cause lost: %v", f, err)
		}
	}

	// Short reads are legal io.Reader behavior, not damage: the scan must
	// decode the identical record set from single-byte delivery.
	for _, off := range []int64{0, 1, 5, n / 2, n - 1} {
		f := resilience.Fault{Class: resilience.ShortRead, Offset: off}
		fr := resilience.NewFaultingReader(bytes.NewReader(data), f)
		got, err := store.Verify(fr, true)
		if err != nil {
			t.Errorf("%s: harmless fragmentation rejected: %v", f, err)
		} else if got != intact {
			t.Errorf("%s: %d records, want %d", f, got, intact)
		}
	}
}

// TestStoreQuarantineMatrix drives damaged segment files through Open:
// for every corrupting class at a sweep of offsets, recovery must
// quarantine the file (renamed aside, counted) and serve every lookup as
// a miss — never a panic, never a damaged byte.
func TestStoreQuarantineMatrix(t *testing.T) {
	data, keys := sealedSegment(t)
	n := int64(len(data))

	damage := func(f resilience.Fault) []byte {
		fr := resilience.NewFaultingReader(bytes.NewReader(data), f)
		d, err := io.ReadAll(fr)
		if err != nil {
			// ErrAfter models a device dying mid-copy: the bytes delivered
			// so far are what lands on disk.
			return d
		}
		return d
	}

	var faults []resilience.Fault
	for off := int64(0); off < n; off += 13 {
		faults = append(faults,
			resilience.Fault{Class: resilience.BitFlip, Offset: off, Bit: uint8(off % 8)},
			resilience.Fault{Class: resilience.Truncate, Offset: off},
			resilience.Fault{Class: resilience.ErrAfter, Offset: off},
		)
		if off > 0 {
			faults = append(faults, resilience.Fault{Class: resilience.DupRead, Offset: off})
		}
	}

	for _, f := range faults {
		t.Run(f.String(), func(t *testing.T) {
			dir := t.TempDir()
			name := filepath.Join(dir, "seg-00000001.mts")
			if err := os.WriteFile(name, damage(f), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := store.Open(store.Options{Dir: dir})
			if err != nil {
				t.Fatalf("Open must survive damage, got %v", err)
			}
			defer st.Close()
			if got := st.Stats().Quarantined; got != 1 {
				t.Fatalf("quarantined = %d, want 1", got)
			}
			for _, k := range keys {
				if payload, ok := st.Get(k); ok {
					t.Fatalf("key %s served %d bytes from a quarantined segment", k, len(payload))
				}
			}
			if _, err := os.Stat(name); !os.IsNotExist(err) {
				t.Errorf("damaged segment still present under its serving name")
			}
			q, _ := filepath.Glob(filepath.Join(dir, "*.quarantined"))
			if len(q) != 1 {
				t.Errorf("quarantine files = %v, want exactly one", q)
			}
			// The store must remain writable after quarantine: recompute
			// and re-persist is the recovery path.
			if err := st.Put(keys[0], []byte("recomputed")); err != nil {
				t.Fatalf("Put after quarantine: %v", err)
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Get(keys[0]); !ok || string(got) != "recomputed" {
				t.Fatalf("recomputed record not served: %q, %v", got, ok)
			}
		})
	}
}

// TestStoreTornTailRecovery: a live segment with a torn tail (crashed
// writer) is truncated to its last intact frame, not quarantined — the
// intact prefix keeps serving.
func TestStoreTornTailRecovery(t *testing.T) {
	data, keys := sealedSegment(t)

	// Strip the seal footer to model a live segment, then tear the tail
	// mid-frame at every offset inside the final record.
	sealed, err := store.Verify(bytes.NewReader(data), true)
	if err != nil || sealed != 3 {
		t.Fatal("fixture broke")
	}
	// Find the live prefix: the longest proper prefix that scans clean as
	// a live segment with all 3 records is the boundary just before the
	// seal footer.
	liveLen := int64(len(data)) - 1
	for ; liveLen > 0; liveLen-- {
		got, err := store.Verify(bytes.NewReader(data[:liveLen]), false)
		if err == nil && got == 3 {
			break
		}
	}
	if liveLen == 0 {
		t.Fatal("no live frame boundary found")
	}
	live := data[:liveLen]

	for cut := liveLen - 1; cut > liveLen-20 && cut > 4; cut-- {
		dir := t.TempDir()
		name := filepath.Join(dir, "seg-00000001.open")
		if err := os.WriteFile(name, live[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		s := st.Stats()
		if s.TruncatedTails != 1 {
			t.Fatalf("cut %d: truncated_tails = %d, want 1", cut, s.TruncatedTails)
		}
		if s.Quarantined != 0 {
			t.Fatalf("cut %d: torn live tail quarantined the segment", cut)
		}
		// The two fully-framed records survive; the torn third is a miss.
		for i, k := range keys[:2] {
			if _, ok := st.Get(k); !ok {
				t.Errorf("cut %d: intact record %d lost", cut, i)
			}
		}
		if _, ok := st.Get(keys[2]); ok {
			t.Errorf("cut %d: torn record served", cut)
		}
		st.Close()
	}
}
