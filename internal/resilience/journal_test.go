package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, "config-v1")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("fresh journal has %d records", j.Len())
	}
	// Keys with spaces ("Table 1") and values with quotes must survive.
	records := map[string]string{
		"Table 1":            "crc:11111111",
		"Figure 2":           "crc:22222222",
		`weird "key" \ name`: "value with spaces",
	}
	for k, v := range records {
		if err := j.Record(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "config-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(records) {
		t.Fatalf("reopened journal has %d records, want %d", j2.Len(), len(records))
	}
	for k, v := range records {
		got, ok := j2.Done(k)
		if !ok || got != v {
			t.Errorf("Done(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	if _, ok := j2.Done("never recorded"); ok {
		t.Error("unrecorded key reported done")
	}
}

func TestJournalBindingMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, "scale=1 seed=1")
	if err != nil {
		t.Fatal(err)
	}
	j.Record("Table 1", "x")
	j.Close()

	if _, err := OpenJournal(path, "scale=2 seed=1"); err == nil {
		t.Fatal("journal from a different configuration accepted for resume")
	} else if !strings.Contains(err.Error(), "binding mismatch") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	j.Record("Table 1", "x")
	j.Record("Figure 2", "y")
	j.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), full...), []byte("MTJ1 deadbeef \"Figure 3")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "cfg")
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if j2.Len() != 2 {
		t.Errorf("torn journal has %d records, want 2", j2.Len())
	}
	if _, ok := j2.Done("Figure 3"); ok {
		t.Error("torn record reported done")
	}
	// Appending after the torn tail must produce a well-formed journal.
	if err := j2.Record("Figure 3", "z"); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, "cfg")
	if err != nil {
		t.Fatalf("journal damaged by post-torn append: %v", err)
	}
	defer j3.Close()
	if v, ok := j3.Done("Figure 3"); !ok || v != "z" {
		t.Errorf("post-torn record lost: %q, %v", v, ok)
	}
}

func TestJournalInteriorDamageFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	j.Record("Table 1", "x")
	j.Record("Figure 2", "y")
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the middle record's body.
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x20
	lines[1] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, "cfg"); err == nil {
		t.Fatal("interior damage accepted")
	}
}

func TestJournalReservedKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("journal-binding", "evil"); err == nil {
		t.Fatal("reserved key accepted")
	}
}
