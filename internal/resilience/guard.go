package resilience

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// EngineGuard runs simulation cells on the fast engine while
// cross-checking a deterministic sample of them against the reference
// engine at runtime. The differential test suite already proves the two
// engines agree on the checked-in workloads; the guard covers the gap the
// suite cannot — the exact traces, configs and placements of a production
// sweep — and turns "the fast engine silently produced wrong numbers" into
// "the sweep finished on the reference engine and told you".
//
// On the first divergence the guard trips permanently: the divergent
// cell's reference result is returned (the reference engine is the
// oracle), OnFallback fires once with the report, and every subsequent
// run uses the reference engine. The sweep completes with correct
// numbers, slower, and the driver exits with the distinct "degraded"
// code.
//
// The guard is safe for concurrent use; core.Suite runs cells in
// parallel.
type EngineGuard struct {
	// SampleEvery cross-checks every Nth run (1 = every run, 0 disables
	// cross-checking; the guard then only forwards to the fast engine,
	// which makes the overhead of the wrapper itself measurable).
	SampleEvery int
	// Guard is the watchdog applied to every run (zero = unbounded).
	Guard sim.Guard
	// Probe, when non-nil, receives Fault events on divergence and
	// fallback. It is invoked under the guard's lock — cold path only.
	Probe obs.Probe
	// OnFallback, when non-nil, fires exactly once, on the run that
	// detected the divergence.
	OnFallback func(DivergenceReport)

	mu          sync.Mutex
	runs        uint64
	crossChecks uint64
	degraded    bool
	report      *DivergenceReport
}

// DivergenceReport describes a caught fast-engine divergence.
type DivergenceReport struct {
	// App, Algorithm and Processors identify the divergent cell.
	App, Algorithm string
	Processors     int
	// RunIndex is the 1-based guarded-run count at detection.
	RunIndex uint64
	// FastExec and RefExec are the two engines' execution times.
	FastExec, RefExec uint64
	// Detail summarizes where the results differ.
	Detail string
}

// String renders the report for logs.
func (r DivergenceReport) String() string {
	return fmt.Sprintf("engine divergence on %s/%s (%d procs, run %d): fast exec %d vs reference %d; %s",
		r.App, r.Algorithm, r.Processors, r.RunIndex, r.FastExec, r.RefExec, r.Detail)
}

// Degraded reports whether the guard has benched the fast engine.
func (g *EngineGuard) Degraded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded
}

// Report returns the divergence report, or nil while healthy.
func (g *EngineGuard) Report() *DivergenceReport {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.report == nil {
		return nil
	}
	rep := *g.report
	return &rep
}

// Stats returns the number of guarded runs and of reference cross-checks
// performed so far.
func (g *EngineGuard) Stats() (runs, crossChecks uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs, g.crossChecks
}

// Run simulates one cell through the guard. It matches sim.Run's
// signature, so core.Suite can adopt it as its Runner unchanged.
func (g *EngineGuard) Run(tr *trace.Trace, pl *placement.Placement, cfg sim.Config) (*sim.Result, error) {
	return g.RunCell(tr, pl, cfg, nil, g.Guard)
}

// RunCell is Run with a per-call probe and watchdog: the serving layer
// gives every HTTP request its own cancellation flag and step budget
// while all requests share one guard (and therefore one degraded/benched
// state). The probe attaches to the authoritative run — the fast engine
// while healthy, the reference engine once benched — never to the sampled
// cross-check run, so probe counts always describe the result returned.
func (g *EngineGuard) RunCell(tr *trace.Trace, pl *placement.Placement, cfg sim.Config, probe obs.Probe, guard sim.Guard) (*sim.Result, error) {
	g.mu.Lock()
	g.runs++
	run := g.runs
	degraded := g.degraded
	check := !degraded && g.SampleEvery > 0 && run%uint64(g.SampleEvery) == 0
	if check {
		g.crossChecks++
	}
	g.mu.Unlock()

	if degraded {
		return sim.RunGuarded(tr, pl, cfg, sim.ReferenceEngine, probe, guard)
	}
	fast, err := sim.RunGuarded(tr, pl, cfg, sim.FastEngine, probe, guard)
	if err != nil {
		return nil, err
	}
	if !check {
		return fast, nil
	}
	ref, err := sim.RunGuarded(tr, pl, cfg, sim.ReferenceEngine, nil, guard)
	if err != nil {
		return nil, err
	}
	if reflect.DeepEqual(fast, ref) {
		return fast, nil
	}

	// Divergence: the reference engine is the oracle — its result stands,
	// the fast engine is benched for the rest of the process.
	rep := DivergenceReport{
		App: tr.App, Algorithm: pl.Algorithm, Processors: cfg.Processors,
		RunIndex: run, FastExec: fast.ExecTime, RefExec: ref.ExecTime,
		Detail: divergenceDetail(fast, ref),
	}
	g.mu.Lock()
	first := !g.degraded
	if first {
		g.degraded = true
		g.report = &rep
	}
	if g.Probe != nil {
		g.Probe.Fault(ref.ExecTime, obs.FaultDivergence)
		if first {
			g.Probe.Fault(ref.ExecTime, obs.FaultFallback)
		}
	}
	g.mu.Unlock()
	if first && g.OnFallback != nil {
		g.OnFallback(rep)
	}
	return ref, nil
}

// RunOnline is RunCell for online adaptive-placement cells: the same
// fast-first/cross-check/bench discipline, with sim.RunOnlineGuarded on
// both sides so the sampled reference run replays the identical
// boundary decisions and migrations. With opts disabled this is exactly
// RunCell — sim.RunOnlineGuarded delegates to sim.RunGuarded.
func (g *EngineGuard) RunOnline(tr *trace.Trace, pl *placement.Placement, cfg sim.Config, opts sim.OnlineOptions, probe obs.Probe, guard sim.Guard) (*sim.Result, error) {
	g.mu.Lock()
	g.runs++
	run := g.runs
	degraded := g.degraded
	check := !degraded && g.SampleEvery > 0 && run%uint64(g.SampleEvery) == 0
	if check {
		g.crossChecks++
	}
	g.mu.Unlock()

	if degraded {
		return sim.RunOnlineGuarded(tr, pl, cfg, sim.ReferenceEngine, opts, probe, guard)
	}
	fast, err := sim.RunOnlineGuarded(tr, pl, cfg, sim.FastEngine, opts, probe, guard)
	if err != nil {
		return nil, err
	}
	if !check {
		return fast, nil
	}
	ref, err := sim.RunOnlineGuarded(tr, pl, cfg, sim.ReferenceEngine, opts, nil, guard)
	if err != nil {
		return nil, err
	}
	if reflect.DeepEqual(fast, ref) {
		return fast, nil
	}

	rep := DivergenceReport{
		App: tr.App, Algorithm: pl.Algorithm, Processors: cfg.Processors,
		RunIndex: run, FastExec: fast.ExecTime, RefExec: ref.ExecTime,
		Detail: divergenceDetail(fast, ref),
	}
	g.mu.Lock()
	first := !g.degraded
	if first {
		g.degraded = true
		g.report = &rep
	}
	if g.Probe != nil {
		g.Probe.Fault(ref.ExecTime, obs.FaultDivergence)
		if first {
			g.Probe.Fault(ref.ExecTime, obs.FaultFallback)
		}
	}
	g.mu.Unlock()
	if first && g.OnFallback != nil {
		g.OnFallback(rep)
	}
	return ref, nil
}

// RunDynamic simulates a dynamic-scheduling cell under the guard's
// watchdog. Dynamic runs always execute on the reference machine, so
// there is no engine pair to cross-check — only the step budget applies.
func (g *EngineGuard) RunDynamic(tr *trace.Trace, cfg sim.Config, policy sim.SchedulePolicy) (*sim.Result, error) {
	g.mu.Lock()
	g.runs++
	g.mu.Unlock()
	return sim.RunDynamicGuarded(tr, cfg, policy, nil, g.Guard)
}

// divergenceDetail points at the first field the two results disagree on.
func divergenceDetail(fast, ref *sim.Result) string {
	switch {
	case fast.ExecTime != ref.ExecTime:
		return "execution times differ"
	case !reflect.DeepEqual(fast.Procs, ref.Procs):
		return "per-processor statistics differ"
	case !reflect.DeepEqual(fast.PairTraffic, ref.PairTraffic):
		return "pairwise traffic matrices differ"
	case !reflect.DeepEqual(fast.ThreadFinish, ref.ThreadFinish):
		return "thread finish times differ"
	default:
		return "results differ outside the headline fields"
	}
}
