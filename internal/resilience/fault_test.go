package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// matrixTrace builds the small trace the fault matrix corrupts.
func matrixTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(99))
	tr := trace.New("matrix", 3)
	for i := 0; i < 3; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 40; j++ {
			r.Compute(rng.Intn(5))
			addr := trace.SharedBase + uint64(rng.Intn(32))*trace.WordSize
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	return tr
}

// TestFaultMatrix is the zero-silent-corruption proof for the trace
// pipeline: every corrupting fault class, applied at every byte offset of
// an MTT2 stream, must surface as a typed *trace.CorruptError — never a
// trace that silently simulates. The non-corrupting class (ShortRead)
// must conversely decode to the identical trace.
func TestFaultMatrix(t *testing.T) {
	tr := matrixTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	classes := []FaultClass{BitFlip, Truncate, DupRead, ShortRead, ErrAfter}
	silent := 0
	for _, class := range classes {
		for off := 0; off < len(stream); off++ {
			f := Fault{Class: class, Offset: int64(off), Bit: uint8(off % 8), Count: int64(1 + off%7)}
			if class == DupRead && off == 0 {
				continue // nothing delivered yet; nothing to duplicate
			}
			got, err := trace.ReadFrom(NewFaultingReader(bytes.NewReader(stream), f))

			if !class.Corrupts() {
				// Fragmented delivery is legal: the read must succeed and
				// match the clean decode.
				if err != nil {
					t.Fatalf("%v: legal short reads rejected: %v", f, err)
				}
				if got.TotalRefs() != tr.TotalRefs() {
					t.Fatalf("%v: short reads changed the decoded trace", f)
				}
				continue
			}

			if err == nil {
				silent++
				t.Errorf("%v: corrupted stream decoded silently (%d refs)", f, got.TotalRefs())
				continue
			}
			var ce *trace.CorruptError
			if !errors.As(err, &ce) {
				t.Errorf("%v: got %v, want *trace.CorruptError", f, err)
			}
			switch class {
			case Truncate:
				if !errors.Is(err, trace.ErrTruncated) {
					t.Errorf("%v: cause %v, want ErrTruncated", f, err)
				}
			case ErrAfter:
				// The injected root cause must survive the wrapping.
				if !errors.Is(err, ErrInjected) {
					t.Errorf("%v: cause %v, want ErrInjected", f, err)
				}
			}
		}
	}
	if silent > 0 {
		t.Fatalf("%d corrupted streams simulated silently", silent)
	}
}

// TestFaultingReaderDeterministic: the same fault yields the same damaged
// bytes on every read.
func TestFaultingReaderDeterministic(t *testing.T) {
	src := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(src)
	for _, f := range []Fault{
		{Class: BitFlip, Offset: 1000, Bit: 3},
		{Class: Truncate, Offset: 2000},
		{Class: DupRead, Offset: 512, Count: 9},
		{Class: ShortRead, Offset: 100},
	} {
		a, errA := io.ReadAll(NewFaultingReader(bytes.NewReader(src), f))
		b, errB := io.ReadAll(NewFaultingReader(bytes.NewReader(src), f))
		if !bytes.Equal(a, b) || (errA == nil) != (errB == nil) {
			t.Errorf("%v: two reads of the same faulted stream differ", f)
		}
	}
}

// TestFaultingReaderShapes pins the exact damage each class inflicts.
func TestFaultingReaderShapes(t *testing.T) {
	src := []byte("0123456789abcdef")

	read := func(f Fault) ([]byte, error) {
		return io.ReadAll(NewFaultingReader(bytes.NewReader(src), f))
	}

	if got, err := read(Fault{Class: BitFlip, Offset: 4, Bit: 0}); err != nil || got[4] != '4'^1 {
		t.Errorf("bit-flip: got %q, %v", got, err)
	}
	if got, err := read(Fault{Class: Truncate, Offset: 7}); err != nil || string(got) != "0123456" {
		t.Errorf("truncate: got %q, %v", got, err)
	}
	if got, err := read(Fault{Class: DupRead, Offset: 5, Count: 3}); err != nil || string(got) != "01234"+"234"+"56789abcdef" {
		t.Errorf("dup-read: got %q, %v", got, err)
	}
	if got, err := read(Fault{Class: ShortRead, Offset: 3}); err != nil || string(got) != string(src) {
		t.Errorf("short-read: got %q, %v (must be lossless)", got, err)
	}
	got, err := read(Fault{Class: ErrAfter, Offset: 6})
	if !errors.Is(err, ErrInjected) || string(got) != "012345" {
		t.Errorf("err-after: got %q, %v", got, err)
	}
}

// TestFaultingWriterAtomicity: a write-side fault mid-WriteFile must leave
// no file (fresh path) or the old file (overwrite), never a partial one.
func TestFaultingWriterShapes(t *testing.T) {
	var buf bytes.Buffer
	w := NewFaultingWriter(&buf, Fault{Class: Truncate, Offset: 5})
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "01234" {
		t.Errorf("truncating writer stored %q", buf.String())
	}

	buf.Reset()
	w = NewFaultingWriter(&buf, Fault{Class: BitFlip, Offset: 2, Bit: 1})
	if _, err := w.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "AA"+string([]byte{'A' ^ 2})+"A" {
		t.Errorf("bit-flipping writer stored %q", buf.String())
	}

	buf.Reset()
	w = NewFaultingWriter(&buf, Fault{Class: ErrAfter, Offset: 3})
	if _, err := w.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Errorf("err-after writer: %v", err)
	}
}

// TestWriteThenReadUnderFaults drives trace.WriteTo through a faulting
// writer and asserts the reader rejects whatever lands on "disk".
func TestWriteThenReadUnderFaults(t *testing.T) {
	tr := matrixTrace()
	var clean bytes.Buffer
	if _, err := tr.WriteTo(&clean); err != nil {
		t.Fatal(err)
	}
	n := clean.Len()
	for off := 1; off < n; off += 17 {
		for _, class := range []FaultClass{BitFlip, Truncate} {
			var buf bytes.Buffer
			fw := NewFaultingWriter(&buf, Fault{Class: class, Offset: int64(off), Bit: uint8(off % 8)})
			// The faulting writer swallows write errors by design
			// (modeling a crash, not an error the writer saw).
			_, _ = tr.WriteTo(fw)
			if _, err := trace.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
				t.Fatalf("%s@%d on write path: damaged file read back silently", class, off)
			}
		}
	}
}

func ExampleFault_String() {
	fmt.Println(Fault{Class: BitFlip, Offset: 12, Bit: 5})
	fmt.Println(Fault{Class: Truncate, Offset: 40})
	// Output:
	// bit-flip@12.5
	// truncate@40
}
