package resilience

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

func guardCell() (*trace.Trace, *placement.Placement, sim.Config) {
	rng := rand.New(rand.NewSource(7))
	tr := trace.New("cell", 4)
	for i := 0; i < 4; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 150; j++ {
			r.Compute(rng.Intn(4))
			addr := trace.SharedBase + uint64(rng.Intn(48))*trace.WordSize
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	pl := &placement.Placement{Algorithm: "TEST", Clusters: [][]int{{0, 1}, {2, 3}}}
	return tr, pl, sim.DefaultConfig(2)
}

func TestEngineGuardHealthy(t *testing.T) {
	tr, pl, cfg := guardCell()
	want, err := sim.Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := &EngineGuard{SampleEvery: 2}
	for i := 0; i < 6; i++ {
		got, err := g.Run(tr, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: guarded result differs from plain run", i)
		}
	}
	if g.Degraded() {
		t.Error("healthy engines tripped the guard")
	}
	if g.Report() != nil {
		t.Error("healthy guard carries a report")
	}
	runs, checks := g.Stats()
	if runs != 6 || checks != 3 {
		t.Errorf("runs/checks = %d/%d, want 6/3", runs, checks)
	}
}

func TestEngineGuardCatchesBrokenFastEngine(t *testing.T) {
	tr, pl, cfg := guardCell()
	want, err := sim.RunEngine(tr, pl, cfg, sim.ReferenceEngine)
	if err != nil {
		t.Fatal(err)
	}

	prev := sim.SetFastEngineFault(func(r *sim.Result) { r.ExecTime += 7 })
	defer sim.SetFastEngineFault(prev)

	var fallbacks []DivergenceReport
	probe := &obs.Counter{}
	g := &EngineGuard{
		SampleEvery: 1,
		Probe:       probe,
		OnFallback:  func(rep DivergenceReport) { fallbacks = append(fallbacks, rep) },
	}

	// First run: divergence detected, reference result returned.
	got, err := g.Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("divergent run did not return the reference result")
	}
	if !g.Degraded() {
		t.Fatal("divergence did not trip the guard")
	}
	rep := g.Report()
	if rep == nil {
		t.Fatal("no divergence report")
	}
	if rep.App != "cell" || rep.FastExec != want.ExecTime+7 || rep.RefExec != want.ExecTime {
		t.Errorf("report %+v does not describe the divergence", rep)
	}
	if rep.Detail != "execution times differ" {
		t.Errorf("detail = %q", rep.Detail)
	}
	if len(fallbacks) != 1 {
		t.Fatalf("OnFallback fired %d times, want 1", len(fallbacks))
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
	if probe.Faults[obs.FaultDivergence] != 1 || probe.Faults[obs.FaultFallback] != 1 {
		t.Errorf("probe fault counts: %v", probe.Faults)
	}

	// Subsequent runs complete on the reference engine — correct results
	// despite the still-broken fast engine, and no second fallback.
	for i := 0; i < 3; i++ {
		got, err := g.Run(tr, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("degraded run %d returned wrong result", i)
		}
	}
	if len(fallbacks) != 1 {
		t.Errorf("OnFallback fired %d times after degradation", len(fallbacks))
	}
}

// TestEngineGuardUnsampledMiss documents the sampling contract: a broken
// fast engine is only caught on sampled runs; between samples its results
// pass through. (This is the price of <2% overhead; SampleEvery tunes it.)
func TestEngineGuardSamplingSkipsUnsampled(t *testing.T) {
	tr, pl, cfg := guardCell()
	prev := sim.SetFastEngineFault(func(r *sim.Result) { r.ExecTime += 7 })
	defer sim.SetFastEngineFault(prev)

	g := &EngineGuard{SampleEvery: 3}
	for i := 1; i <= 2; i++ {
		if _, err := g.Run(tr, pl, cfg); err != nil {
			t.Fatal(err)
		}
		if g.Degraded() {
			t.Fatalf("guard tripped on unsampled run %d", i)
		}
	}
	if _, err := g.Run(tr, pl, cfg); err != nil {
		t.Fatal(err)
	}
	if !g.Degraded() {
		t.Error("guard missed the divergence on the sampled third run")
	}
}

func TestEngineGuardConcurrent(t *testing.T) {
	tr, pl, cfg := guardCell()
	prev := sim.SetFastEngineFault(func(r *sim.Result) { r.ExecTime += 7 })
	defer sim.SetFastEngineFault(prev)

	want, err := sim.RunEngine(tr, pl, cfg, sim.ReferenceEngine)
	if err != nil {
		t.Fatal(err)
	}
	var fallbackCount int
	var mu sync.Mutex
	g := &EngineGuard{SampleEvery: 1, OnFallback: func(DivergenceReport) {
		mu.Lock()
		fallbackCount++
		mu.Unlock()
	}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				got, err := g.Run(tr, pl, cfg)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent guarded run returned non-reference result")
					return
				}
			}
		}()
	}
	wg.Wait()
	if fallbackCount != 1 {
		t.Errorf("OnFallback fired %d times under concurrency, want 1", fallbackCount)
	}
}

// guardRotate migrates every thread one processor right at each
// boundary — enough churn that any cross-engine skew becomes visible.
type guardRotate struct{}

func (guardRotate) Name() string { return "ROTATE" }
func (guardRotate) Decide(ck *sim.OnlineCheckpoint, env sim.OnlineEnv) []int {
	want := make([]int, len(ck.Assign))
	for t, q := range ck.Assign {
		want[t] = q
		if q >= 0 {
			want[t] = (q + 1) % env.Procs
		}
	}
	return want
}

// TestEngineGuardRunOnlineDisabled: zero online options make RunOnline
// exactly RunCell — static results, no Online stats, normal sampling.
func TestEngineGuardRunOnlineDisabled(t *testing.T) {
	tr, pl, cfg := guardCell()
	want, err := sim.Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := &EngineGuard{SampleEvery: 2}
	for i := 0; i < 4; i++ {
		got, err := g.RunOnline(tr, pl, cfg, sim.OnlineOptions{}, nil, sim.Guard{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Online != nil {
			t.Fatal("disabled online run carries Online stats")
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: disabled RunOnline differs from static run", i)
		}
	}
	if runs, checks := g.Stats(); runs != 4 || checks != 2 {
		t.Errorf("runs/checks = %d/%d, want 4/2", runs, checks)
	}
}

// TestEngineGuardRunOnlineHealthy: agreeing engines pass the sampled
// cross-check with migrations in flight.
func TestEngineGuardRunOnlineHealthy(t *testing.T) {
	tr, pl, cfg := guardCell()
	opts := sim.OnlineOptions{Interval: 300, Penalty: 16, Policy: guardRotate{}}
	want, err := sim.RunOnlineGuarded(tr, pl, cfg, sim.ReferenceEngine, opts, nil, sim.Guard{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Online == nil || want.Online.Migrations == 0 {
		t.Fatal("workload produced no migrations; test is vacuous")
	}
	g := &EngineGuard{SampleEvery: 1}
	for i := 0; i < 3; i++ {
		got, err := g.RunOnline(tr, pl, cfg, opts, nil, sim.Guard{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: guarded online result differs from reference", i)
		}
	}
	if g.Degraded() {
		t.Error("agreeing online engines tripped the guard")
	}
}

// TestEngineGuardRunOnlineCatchesFault: a corrupted fast engine is
// benched on an online run and the reference result is served instead.
func TestEngineGuardRunOnlineCatchesFault(t *testing.T) {
	tr, pl, cfg := guardCell()
	opts := sim.OnlineOptions{Interval: 300, Penalty: 16, Policy: guardRotate{}}
	want, err := sim.RunOnlineGuarded(tr, pl, cfg, sim.ReferenceEngine, opts, nil, sim.Guard{})
	if err != nil {
		t.Fatal(err)
	}

	prev := sim.SetFastEngineFault(func(r *sim.Result) { r.ExecTime += 7 })
	defer sim.SetFastEngineFault(prev)

	var fallbacks int
	g := &EngineGuard{SampleEvery: 1, OnFallback: func(DivergenceReport) { fallbacks++ }}
	got, err := g.RunOnline(tr, pl, cfg, opts, nil, sim.Guard{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("divergent online run did not return the reference result")
	}
	if !g.Degraded() || g.Report() == nil {
		t.Fatal("online divergence did not trip the guard")
	}
	// Degraded: later runs (online and static) stay on the reference
	// engine and remain correct despite the broken fast engine.
	got, err = g.RunOnline(tr, pl, cfg, opts, nil, sim.Guard{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("degraded online run returned wrong result")
	}
	if fallbacks != 1 {
		t.Errorf("OnFallback fired %d times, want 1", fallbacks)
	}
}

func TestEngineGuardWatchdog(t *testing.T) {
	tr, pl, cfg := guardCell()
	g := &EngineGuard{Guard: sim.Guard{MaxSteps: 20}}
	if _, err := g.Run(tr, pl, cfg); err == nil {
		t.Fatal("guard's step budget did not abort the run")
	}
	gd := &EngineGuard{Guard: sim.Guard{MaxSteps: 20}}
	if _, err := gd.RunDynamic(tr, cfg, sim.FIFO); err == nil {
		t.Fatal("guard's step budget did not abort the dynamic run")
	}
}
