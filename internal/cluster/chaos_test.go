package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
)

// Chaos suite: a worker is killed, partitioned, or restarted while it
// holds leased cells mid-sweep. In every scenario the sweep must finish
// with zero lost and zero duplicated cells and results byte-identical to
// the direct library run — the determinism of the simulator is what
// makes requeue-and-rerun (and the duplicate work a partition causes)
// semantically free.

// TestClusterChaos is the table: each scenario disrupts worker 0 (made a
// straggler so it reliably holds in-flight leases) after the sweep is
// underway, then requires a clean, byte-identical finish.
func TestClusterChaos(t *testing.T) {
	scenarios := []struct {
		name string
		// disrupt acts on the cluster once at least one cell completed.
		disrupt func(t *testing.T, tc *testCluster)
		// revives reports whether worker 0 is expected back among the
		// live workers at the end.
		revives bool
	}{
		{
			// Crash: the worker process is gone — connections refused,
			// heartbeats silent. The first transport error marks it dead
			// and requeues its lease.
			name:    "kill-worker",
			disrupt: func(t *testing.T, tc *testCluster) { tc.workers[0].kill() },
		},
		{
			// Partition: the worker is alive and still computing, but
			// heartbeats stop reaching the coordinator. After the
			// heartbeat timeout its cells are requeued elsewhere; the
			// partitioned side's surplus work is discarded harmlessly.
			name:    "partition-worker",
			disrupt: func(t *testing.T, tc *testCluster) { tc.workers[0].partition() },
		},
		{
			// Restart: crash, then — after the coordinator has declared
			// the death and requeued — a worker with the same ID
			// re-registers from a fresh address (new ephemeral port) and
			// rejoins the rerouted sweep. (An instant rejoin can outrun
			// death detection entirely: registration just refreshes the
			// URL. Waiting makes the scenario the one it claims to be.)
			name: "restart-worker",
			disrupt: func(t *testing.T, tc *testCluster) {
				id := tc.workers[0].id
				tc.workers[0].kill()
				deadline := time.Now().Add(10 * time.Second)
				for tc.coord.Metrics().Snapshot()["coordinator_worker_deaths_total"] == 0 {
					if time.Now().After(deadline) {
						t.Fatal("coordinator never declared the killed worker dead")
					}
					time.Sleep(2 * time.Millisecond)
				}
				tc.addWorker(id, serve.Options{Workers: 1})
			},
			revives: true,
		},
	}

	apps, algs, procs := loadgen.ClusterDims()
	cells := loadgen.ClusterMix()
	want, err := loadgen.GroundTruth(testScale, testSeed, cells)
	if err != nil {
		t.Fatal(err)
	}

	if testing.Short() {
		// The race tier (make racecheck) runs this suite under -race,
		// where the full matrix triples a deliberately slow test. One
		// scenario still exercises every requeue path the detector can
		// see; the full matrix runs in the regular CI tier.
		scenarios = scenarios[:1]
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			// Journaled: requeued re-executions must agree with the keys
			// journaled before the disruption or the job fails loudly.
			opts := testCoordOptions()
			opts.Journal = filepath.Join(t.TempDir(), "coord.mtj")
			tc := startCoordinator(t, opts)
			// Worker 0 is a single-slot straggler: when the disruption
			// lands it is still mid-cell with a leased tail behind it.
			tc.addWorker("w0", serve.Options{
				Workers:     1,
				SampleEvery: -1,
				BeforeCell:  func() { time.Sleep(100 * time.Millisecond) },
			})
			for _, id := range []string{"w1", "w2", "w3"} {
				tc.addWorker(id, serve.Options{Workers: 1})
			}
			tc.waitLive(4)

			cl := tc.client()
			params := serve.Params{Scale: testScale, Seed: testSeed}
			acc, err := cl.Sweep(&serve.SweepRequest{
				Params: &params, Apps: apps, Algorithms: algs, Procs: procs,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Disrupt only once the sweep is demonstrably in flight.
			deadline := time.Now().Add(20 * time.Second)
			for {
				st, ok := tc.coord.Job(acc.Job)
				if ok && st.Completed >= 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("sweep never started completing cells")
				}
				time.Sleep(2 * time.Millisecond)
			}
			sc.disrupt(t, tc)

			st, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 60*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status != serve.StatusDone {
				t.Fatalf("sweep ended %s after %s: %s", st.Status, sc.name, st.Error)
			}
			// Byte-identical, every cell exactly once, in order.
			assertResults(t, st, cells, want)

			snap := tc.coord.Metrics().Snapshot()
			// Zero lost: every cell was recorded done. Zero duplicated:
			// recorded done exactly once — the counter is incremented per
			// first report only, so > len(cells) would mean double count.
			if got := snap["coordinator_cells_completed_total"]; got != int64(len(cells)) {
				t.Errorf("%d cells recorded complete, want exactly %d", got, len(cells))
			}
			if snap["coordinator_cells_failed_total"] != 0 {
				t.Errorf("%d cells failed", snap["coordinator_cells_failed_total"])
			}
			if snap["coordinator_pending_cells"] != 0 {
				t.Errorf("pending gauge %d after completion", snap["coordinator_pending_cells"])
			}
			// The disruption must actually have rerouted work.
			if snap["coordinator_requeues_total"] == 0 {
				t.Errorf("%s caused no requeues — the disruption landed after the sweep finished", sc.name)
			}
			if snap["coordinator_worker_deaths_total"] == 0 {
				t.Errorf("%s recorded no worker death", sc.name)
			}

			live := tc.coord.liveWorkerIDs(time.Now())
			hasW0 := false
			for _, id := range live {
				hasW0 = hasW0 || id == "w0"
			}
			if sc.revives && !hasW0 {
				t.Errorf("restarted worker w0 not live again (live: %v)", live)
			}
			if !sc.revives && hasW0 {
				t.Errorf("disrupted worker w0 still counted live (live: %v)", live)
			}
		})
	}
}
