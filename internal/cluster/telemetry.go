package cluster

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Coordinator-side halves of the telemetry endpoints. The wire formats
// (serve.JobEvent, serve.CellEvent, serve.TraceSpans, Perfetto JSON) are
// the worker's, so one client understands both tiers. The trace
// endpoint is the cluster-wide merge point: it joins the coordinator's
// own spans with every live worker's before rendering, which is how a
// whole sweep — coordinator scheduling plus each worker's queueing and
// engine runs — lands on a single Perfetto timeline.

// coordService is the coordinator's service label in spans.
const coordService = "mtcoord"

// jobTopic names a job's bus topic (same scheme as the workers).
func jobTopic(id string) string { return "job:" + id }

// traceFromRequest extracts the caller's context from the Mtsim-Trace
// header, minting a fresh root when absent. Zero when telemetry is off.
func (c *Coordinator) traceFromRequest(r *http.Request) obs.SpanContext {
	if c.spans == nil {
		return obs.SpanContext{}
	}
	if ctx, ok := obs.ParseTrace(r.Header.Get(obs.TraceHeader)); ok {
		return ctx
	}
	return obs.NewTrace()
}

// publishJob emits a job-level state event.
func (c *Coordinator) publishJob(j *cjob) {
	if c.bus == nil {
		return
	}
	c.bus.Publish(jobTopic(j.id), "job", serve.JobEventOf(j.snapshot()))
}

// publishCell emits one harvested cell outcome.
func (c *Coordinator) publishCell(j *cjob, ci int, workerID, state, key string, cached bool, errmsg string) {
	if c.bus == nil {
		return
	}
	cell := j.cells[ci]
	c.bus.Publish(jobTopic(j.id), "cell", serve.CellEvent{
		Job: j.id, Cell: ci, Worker: workerID,
		App: cell.app, Algorithm: cell.alg, Procs: cell.procs,
		State: state, Key: key, Cached: cached, Error: errmsg,
	})
}

// handleJobEvents streams a job's progress as server-sent events, same
// contract as a worker: a "job" snapshot first, bus events after, and
// the terminal state delivered off the done channel even if the bus
// dropped everything.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id, false)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported", false)
		return
	}

	var events <-chan obs.Event
	if c.bus != nil {
		sub := c.bus.Subscribe(jobTopic(id), sseBuffer)
		defer sub.Close()
		events = sub.C()
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	st := j.snapshot()
	if err := serve.WriteSSE(w, obs.Event{Kind: "job", Data: serve.JobEventOf(st)}); err != nil {
		return
	}
	fl.Flush()
	if serve.TerminalStatus(st.Status) {
		return
	}

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev := <-events:
			if err := serve.WriteSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
			if je, ok := ev.Data.(serve.JobEvent); ok && serve.TerminalStatus(je.Status) {
				return
			}
		case <-j.done:
			_ = serve.WriteSSE(w, obs.Event{Kind: "job", Data: serve.JobEventOf(j.snapshot())})
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// sseKeepalive and sseBuffer mirror the worker's stream tuning.
const (
	sseKeepalive = 15 * time.Second
	sseBuffer    = 256
)

// handleTrace merges the coordinator's spans with every live worker's
// and renders the cluster-wide trace. Worker fetch failures are
// tolerated — a dead worker's spans are simply absent, the surviving
// timeline still renders (the chaos contract).
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	if c.spans == nil {
		writeError(w, http.StatusNotFound, "tracing disabled", false)
		return
	}
	id := r.PathValue("id")
	spans := c.spans.Trace(id)
	for _, wid := range c.liveWorkerIDs(time.Now()) {
		wk := c.workerByID(wid)
		if wk == nil {
			continue
		}
		ws, err := wk.client().Spans(id)
		if err != nil {
			continue
		}
		spans = append(spans, ws...)
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "unknown trace "+id, false)
		return
	}
	obs.SortSpans(spans)
	if r.URL.Query().Get("format") == "spans" {
		writeJSON(w, http.StatusOK, serve.TraceSpans{Trace: id, Spans: spans})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WritePerfetto(w, id, spans)
}
