package cluster

import (
	"encoding/binary"
	"fmt"

	"repro/internal/serve"
	"repro/internal/serve/rescache"
)

// Sharding: every sweep cell has a content address derived with the same
// rescache SHA-256 machinery that keys the workers' result caches, and
// the coordinator routes a cell to the live worker that wins
// rendezvous (highest-random-weight) hashing on that address. Two
// properties follow:
//
//   - Affinity: the same cell always prefers the same worker while
//     membership is stable, so repeated and overlapping sweeps hit that
//     worker's result cache instead of re-simulating elsewhere.
//   - Minimal reshuffle: when a worker dies, only its cells move;
//     rendezvous hashing leaves every other cell's preference intact
//     (a mod-N ring would reshuffle almost everything).
//
// Work-stealing then corrects any imbalance the hash leaves behind, so
// the shard key is a cache-locality preference, never a correctness
// constraint — any worker computes the bit-identical result.

// shardKeyVersion is the domain-separation label folded into every shard
// key. Bumping it reshuffles every cell's placement across the cluster,
// which is why TestShardKeyGolden pins the key bytes: a silent change
// here must fail loudly, not quietly invalidate every worker's cache
// affinity.
const shardKeyVersion = "mtcoord-shard-v1"

// CellShardKey derives the routing content address of one sweep cell.
// It folds in everything that identifies the cell at the request level —
// workload params, app, placement algorithm, machine size, cache mode
// and engine — mirroring the inputs of the workers' own result-cache
// keys (rescache.KeyOf needs the resolved placement, which only the
// worker derives; the request-level identity is a strict function of
// these fields, so equal shard keys imply equal result-cache keys).
func CellShardKey(params serve.Params, app, algorithm string, procs int, infinite bool, engine string) rescache.Key {
	return rescache.SumStrings(shardKeyVersion,
		fmt.Sprintf("scale=%g", params.Scale),
		fmt.Sprintf("seed=%d", params.Seed),
		"app="+app,
		"alg="+algorithm,
		fmt.Sprintf("procs=%d", procs),
		fmt.Sprintf("infinite=%t", infinite),
		"engine="+engine,
	)
}

// rendezvousScore ranks one (cell, worker) pair. The highest score among
// live workers wins the cell.
func rendezvousScore(key rescache.Key, workerID string) uint64 {
	sum := rescache.SumStrings("mtcoord-rendezvous-v1", key.String(), workerID)
	return binary.BigEndian.Uint64(sum[:8])
}

// pickWorker returns the rendezvous winner for key among workers (any
// order; ties break toward the lexicographically smaller ID so the
// choice is deterministic). Empty input returns "".
func pickWorker(key rescache.Key, workers []string) string {
	best, bestScore := "", uint64(0)
	for _, w := range workers {
		s := rendezvousScore(key, w)
		if best == "" || s > bestScore || (s == bestScore && w < best) {
			best, bestScore = w, s
		}
	}
	return best
}
