// Package cluster is the distributed sweep layer: a coordinator daemon
// (cmd/mtcoord) that serves mtserve's public API but executes sweeps
// across N registered mtserve workers. Cells are routed by rescache
// content address (shard.go), granted to workers as leases (the
// worker-side protocol in internal/serve/lease.go), harvested
// incrementally, stolen back from stragglers for idle workers, and
// requeued when a worker dies mid-lease. Because the simulator is
// deterministic and cell execution idempotent, every rebalancing —
// steal, requeue, duplicate execution after a partition — yields
// byte-identical results; the chaos test suite holds the cluster to
// exactly that.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"

	"repro/internal/serve"
)

// Bounds for the cluster-internal decoders. Like the public API decoders
// they run on untrusted input: hard byte limit first, field bounds after.
const (
	// MaxRequestBytes caps a registration/heartbeat body.
	MaxRequestBytes = 1 << 16
	// MaxWorkerID caps a worker identifier.
	MaxWorkerID = serve.MaxNameLen
	// MaxWorkerURL caps a worker's advertised base URL.
	MaxWorkerURL = 256
	// MaxWorkers caps cluster membership; registrations beyond it are
	// refused (a runaway registration loop must not grow the registry
	// without bound).
	MaxWorkers = 256
)

// RegisterRequest is the POST /cluster/v1/register body: a worker
// announcing itself. Re-registering an existing ID is idempotent and
// refreshes the URL and liveness (a restarted worker re-registers).
type RegisterRequest struct {
	// Worker is the caller-chosen worker ID ([A-Za-z0-9._-]).
	Worker string `json:"worker"`
	// URL is the worker's advertised base URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	Worker string `json:"worker"`
	// Workers is the live-member count after this registration.
	Workers int `json:"workers"`
}

// HeartbeatRequest is the POST /cluster/v1/heartbeat body. A worker that
// stops heartbeating for longer than the coordinator's timeout is
// declared dead and its in-flight cells are requeued.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	Worker string `json:"worker"`
}

// validWorkerID restricts worker IDs to a URL- and metric-safe alphabet.
func validWorkerID(id string) error {
	if id == "" {
		return errors.New("worker id is required")
	}
	if len(id) > MaxWorkerID {
		return fmt.Errorf("worker id longer than %d bytes", MaxWorkerID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("worker id contains %q (want [A-Za-z0-9._-])", c)
		}
	}
	return nil
}

// Validate checks a registration's shape and bounds.
func (r *RegisterRequest) Validate() error {
	if err := validWorkerID(r.Worker); err != nil {
		return err
	}
	if r.URL == "" {
		return errors.New("worker url is required")
	}
	if len(r.URL) > MaxWorkerURL {
		return fmt.Errorf("worker url longer than %d bytes", MaxWorkerURL)
	}
	u, err := url.Parse(r.URL)
	if err != nil {
		return fmt.Errorf("worker url: %v", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("worker url %q must be absolute http(s)", r.URL)
	}
	return nil
}

// Validate checks a heartbeat's shape.
func (r *HeartbeatRequest) Validate() error {
	return validWorkerID(r.Worker)
}

// decodeStrict decodes exactly one JSON value with unknown fields
// rejected and the byte budget enforced up front (mirrors the serve
// decoder discipline).
func decodeStrict(r io.Reader, v any) error {
	lr := io.LimitReader(r, MaxRequestBytes+1)
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) && lr.(*io.LimitedReader).N == 0 {
			return fmt.Errorf("request body exceeds %d bytes", MaxRequestBytes)
		}
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON request")
	}
	return nil
}

// DecodeRegisterRequest reads and validates a registration body.
func DecodeRegisterRequest(r io.Reader) (*RegisterRequest, error) {
	var req RegisterRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeHeartbeatRequest reads and validates a heartbeat body.
func DecodeHeartbeatRequest(r io.Reader) (*HeartbeatRequest, error) {
	var req HeartbeatRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}
