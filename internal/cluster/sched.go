package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// The per-job scheduler. Every accepted sweep gets one goroutine running
// the harvest → death-sweep → grant → steal loop until all cells are
// accounted for. All rebalancing is safe by construction: a worker never
// runs a cell the coordinator stole back (the worker-side steal only
// takes pending cells), re-execution after a death is byte-identical
// (deterministic simulator), and result recording is idempotent (first
// report wins, any second report carries the same bytes).

// leaseRef is the coordinator's record of one outstanding lease.
type leaseRef struct {
	id    string
	w     *worker
	cells []int // job cell indices, in lease-local order

	granted time.Time       // grant instant, for the grant-to-harvest histogram
	span    *obs.ActiveSpan // coordinator-side lease span (nil without telemetry)
}

// leaseDone closes the books on a lease leaving the outstanding set:
// the grant-to-final-harvest latency lands in the histogram and the
// lease span ends.
func (c *Coordinator) leaseDone(lr *leaseRef) {
	c.metrics.leaseHarvest.ObserveSince(lr.granted)
	lr.span.End()
}

// runJob drives one sweep to a terminal state.
func (c *Coordinator) runJob(j *cjob) {
	defer c.wg.Done()
	j.mu.Lock()
	j.status = serve.StatusRunning
	j.mu.Unlock()
	c.publishJob(j)

	// Warm start: cells whose results already sit in the durable store
	// complete right here; only the remainder is leased out.
	c.restoreFromStore(j)

	var outstanding []*leaseRef
	leaseSeq := 0
	for {
		if c.Draining() {
			c.retireRetriable(j, outstanding)
			return
		}
		now := time.Now()
		outstanding = c.harvest(j, outstanding, now)
		if j.finished() {
			c.finalize(j)
			return
		}
		if live := c.liveWorkerIDs(now); len(live) > 0 {
			outstanding = c.grantPending(j, outstanding, live, &leaseSeq)
			outstanding = c.stealForIdle(j, outstanding, live, now, &leaseSeq)
		}
		time.Sleep(c.opts.PollInterval)
	}
}

// harvest polls every outstanding lease, records finished cells, requeues
// the leases of dead workers, and drops completed leases. It returns the
// leases still live.
func (c *Coordinator) harvest(j *cjob, outstanding []*leaseRef, now time.Time) []*leaseRef {
	kept := outstanding[:0]
	for _, lr := range outstanding {
		if !lr.w.alive(now, c.opts.HeartbeatTimeout) {
			// Heartbeat silence or an earlier transport failure: the worker
			// may well still be computing (a partition, not a crash), but
			// its results are unreachable — requeue and let determinism
			// absorb the duplicate execution.
			c.markDead(lr.w, errors.New("heartbeat timeout"))
			c.requeueLease(j, lr)
			c.leaseDone(lr)
			continue
		}
		st, err := lr.w.client().LeaseStatus(lr.id)
		if err != nil {
			var ae *client.APIError
			if errors.As(err, &ae) {
				// The worker answered, so it is alive — but it does not
				// know the lease (a restart lost its registry). Requeue.
				c.requeueLease(j, lr)
			} else {
				c.markDead(lr.w, err)
				c.requeueLease(j, lr)
			}
			c.leaseDone(lr)
			continue
		}
		for li, cs := range st.CellState {
			if li >= len(lr.cells) {
				break
			}
			ci := lr.cells[li]
			if !j.ownedBy(ci, lr.id) {
				continue // stolen: another lease owns this cell now
			}
			switch cs.State {
			case "done":
				c.recordDone(j, lr, ci, cs)
			case "failed":
				c.recordFailed(j, lr, ci, cs)
			}
		}
		switch st.Status {
		case serve.StatusDone, serve.StatusFailed, serve.StatusRetriable, serve.StatusCanceled:
			// Terminal on the worker: anything this lease still owns (cells
			// the worker drained) goes back to pending.
			c.requeueLease(j, lr)
			c.leaseDone(lr)
		default:
			kept = append(kept, lr)
		}
	}
	return kept
}

// ownedBy reports whether cell ci is currently leased under leaseID.
func (j *cjob) ownedBy(ci int, leaseID string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.states[ci] == cLeased && j.leaseOf[ci] == leaseID
}

// recordDone stores one finished cell. Idempotent: only the first report
// mutates the job (any later duplicate carries identical bytes anyway).
func (c *Coordinator) recordDone(j *cjob, lr *leaseRef, ci int, cs serve.LeaseCellStatus) {
	j.mu.Lock()
	if j.states[ci] == cDone || j.states[ci] == cFailed {
		j.mu.Unlock()
		return
	}
	j.states[ci] = cDone
	j.leaseOf[ci] = ""
	r := &j.results[ci]
	r.Key, r.Cached, r.Result = cs.Key, cs.Cached, cs.Result
	j.completed++
	j.mu.Unlock()

	c.metrics.cellsCompleted.Inc()
	c.metrics.pendingCells.Add(-1)
	lr.w.metrics.pending.Add(-1)
	c.publishCell(j, ci, lr.w.id, "done", cs.Key, cs.Cached, "")
	c.persistCell(j.cells[ci], j.resultOf(ci))
	if c.journal != nil {
		if err := c.journal.cellDone(j.id, ci, cs.Key); err != nil {
			// A post-crash re-execution disagreed with the journaled result
			// key: the one corruption class resubmission cannot absorb.
			// Fail the job loudly rather than return silently wrong data.
			j.mu.Lock()
			if j.errmsg == "" {
				j.errmsg = err.Error()
			}
			j.mu.Unlock()
			if c.opts.Log != nil {
				c.opts.Log.Error("journal divergence", "job", j.id, "cell", ci, "err", err.Error())
			}
		}
	}
}

// recordFailed stores one failed cell (a simulation error on a healthy
// worker — deterministic, so requeueing would just fail again).
func (c *Coordinator) recordFailed(j *cjob, lr *leaseRef, ci int, cs serve.LeaseCellStatus) {
	j.mu.Lock()
	if j.states[ci] == cDone || j.states[ci] == cFailed {
		j.mu.Unlock()
		return
	}
	j.states[ci] = cFailed
	j.leaseOf[ci] = ""
	j.results[ci].Key = cs.Key
	j.failed++
	if j.errmsg == "" {
		cell := j.cells[ci]
		j.errmsg = fmt.Sprintf("cell %s/%s/p%d: %s", cell.app, cell.alg, cell.procs, cs.Error)
	}
	j.mu.Unlock()

	c.metrics.cellsFailed.Inc()
	c.metrics.pendingCells.Add(-1)
	lr.w.metrics.pending.Add(-1)
	c.publishCell(j, ci, lr.w.id, "failed", cs.Key, false, cs.Error)
}

// requeueLease returns every cell a lease still owns to pending.
func (c *Coordinator) requeueLease(j *cjob, lr *leaseRef) {
	n := 0
	j.mu.Lock()
	for _, ci := range lr.cells {
		if j.states[ci] == cLeased && j.leaseOf[ci] == lr.id {
			j.states[ci] = cPending
			j.leaseOf[ci] = ""
			n++
		}
	}
	j.mu.Unlock()
	if n > 0 {
		c.metrics.cellsRequeued.Add(int64(n))
		lr.w.metrics.requeues.Add(int64(n))
		lr.w.metrics.pending.Add(-int64(n))
		if c.spans != nil && j.trace.Valid() {
			c.spans.AddEvent(j.trace, coordService, "requeue",
				fmt.Sprintf("%d cells off %s", n, lr.w.id))
		}
		if c.opts.Log != nil {
			c.opts.Log.Warn("lease requeued", "job", j.id, "lease", lr.id, "worker", lr.w.id, "cells", n)
		}
	}
}

// grantPending routes every pending cell to its rendezvous-preferred live
// worker and grants leases in LeaseChunk batches.
func (c *Coordinator) grantPending(j *cjob, outstanding []*leaseRef, live []string, leaseSeq *int) []*leaseRef {
	pending := j.pendingIndices()
	if len(pending) == 0 {
		return outstanding
	}
	byWorker := make(map[string][]int)
	for _, ci := range pending {
		wid := pickWorker(j.cells[ci].shard, live)
		byWorker[wid] = append(byWorker[wid], ci)
	}
	wids := make([]string, 0, len(byWorker))
	for wid := range byWorker {
		wids = append(wids, wid)
	}
	sort.Strings(wids)
	for _, wid := range wids {
		w := c.workerByID(wid)
		if w == nil {
			continue
		}
		cells := byWorker[wid]
		for len(cells) > 0 {
			n := min(c.opts.LeaseChunk, len(cells))
			lr := c.grantLease(j, w, cells[:n], leaseSeq)
			if lr == nil {
				break // refused or dead; the rest stays pending for next tick
			}
			cells = cells[n:]
			outstanding = append(outstanding, lr)
		}
	}
	return outstanding
}

// grantLease grants one lease of the given job cells to a worker and
// marks them leased. Returns nil if the worker refused (queue pressure —
// retried next tick) or failed at the transport (declared dead).
func (c *Coordinator) grantLease(j *cjob, w *worker, cells []int, leaseSeq *int) *leaseRef {
	*leaseSeq++
	leaseID := fmt.Sprintf("%s-%d", j.id, *leaseSeq)
	req := &serve.LeaseRequest{
		Lease:    leaseID,
		Params:   &j.params,
		Engine:   j.engine,
		Infinite: j.infinite,
		Cells:    make([]serve.LeaseCell, len(cells)),
	}
	for i, ci := range cells {
		cell := j.cells[ci]
		req.Cells[i] = serve.LeaseCell{App: cell.app, Algorithm: cell.alg, Procs: cell.procs}
	}
	var sp *obs.ActiveSpan
	if c.spans != nil && j.trace.Valid() {
		// The worker parents its lease span under this one, so the grant
		// shows as a coordinator interval with the worker's work inside.
		sp = c.spans.Start(j.trace, coordService, "lease "+w.id)
		req.Trace = sp.Context().HeaderValue()
	}
	if _, err := w.client().Lease(req); err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Retriable {
			return nil // queue full / draining: back off one tick
		}
		c.markDead(w, err)
		return nil
	}
	granted := append([]int(nil), cells...)
	j.mu.Lock()
	for _, ci := range granted {
		j.states[ci] = cLeased
		j.leaseOf[ci] = leaseID
	}
	j.mu.Unlock()
	c.metrics.leasesGranted.Inc()
	w.metrics.pending.Add(int64(len(granted)))
	return &leaseRef{id: leaseID, w: w, cells: granted, granted: time.Now(), span: sp}
}

// owned counts the cells a lease still owns.
func (j *cjob) owned(lr *leaseRef) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, ci := range lr.cells {
		if j.states[ci] == cLeased && j.leaseOf[ci] == lr.id {
			n++
		}
	}
	return n
}

// stealForIdle lets every idle live worker take half of the biggest
// straggler lease's remaining tail. The stolen cells are granted straight
// to the idle worker — rendezvous routing would hand them right back to
// the straggler.
func (c *Coordinator) stealForIdle(j *cjob, outstanding []*leaseRef, live []string, now time.Time, leaseSeq *int) []*leaseRef {
	busy := make(map[string]int)
	for _, lr := range outstanding {
		busy[lr.w.id] += j.owned(lr)
	}
	for _, wid := range live {
		if busy[wid] > 0 {
			continue
		}
		idle := c.workerByID(wid)
		if idle == nil {
			continue
		}
		// Victim: the live lease with the most remaining cells, ties toward
		// the smaller lease ID for determinism.
		var victim *leaseRef
		vRem := 0
		for _, lr := range outstanding {
			if lr.w.id == wid || !lr.w.alive(now, c.opts.HeartbeatTimeout) {
				continue
			}
			r := j.owned(lr)
			if r < c.opts.StealMin {
				continue
			}
			if r > vRem || (r == vRem && victim != nil && lr.id < victim.id) {
				victim, vRem = lr, r
			}
		}
		if victim == nil {
			continue
		}
		resp, err := victim.w.client().Steal(victim.id, (vRem+1)/2)
		if err != nil {
			var ae *client.APIError
			if !errors.As(err, &ae) {
				c.markDead(victim.w, err)
			}
			continue // harvest handles requeueing on the next tick
		}
		moved := make([]int, 0, len(resp.Stolen))
		j.mu.Lock()
		for _, si := range resp.Stolen {
			if si < 0 || si >= len(victim.cells) {
				continue
			}
			ci := victim.cells[si]
			if j.states[ci] == cLeased && j.leaseOf[ci] == victim.id {
				j.states[ci] = cPending
				j.leaseOf[ci] = ""
				moved = append(moved, ci)
			}
		}
		j.mu.Unlock()
		if len(moved) == 0 {
			continue
		}
		c.metrics.cellsStolen.Add(int64(len(moved)))
		victim.w.metrics.steals.Add(int64(len(moved)))
		victim.w.metrics.pending.Add(-int64(len(moved)))
		if c.spans != nil && j.trace.Valid() {
			c.spans.AddEvent(j.trace, coordService, "steal",
				fmt.Sprintf("%d cells %s -> %s", len(moved), victim.w.id, wid))
		}
		if c.opts.Log != nil {
			c.opts.Log.Info("cells stolen", "job", j.id, "from", victim.w.id, "to", wid, "cells", len(moved))
		}
		if lr := c.grantLease(j, idle, moved, leaseSeq); lr != nil {
			outstanding = append(outstanding, lr)
			busy[wid] += len(moved)
		}
	}
	return outstanding
}

// finalize moves a fully accounted job to done or failed.
func (c *Coordinator) finalize(j *cjob) {
	j.mu.Lock()
	if j.failed > 0 || j.errmsg != "" {
		j.status = serve.StatusFailed
	} else {
		j.status = serve.StatusDone
	}
	status := j.status
	j.mu.Unlock()
	j.span.SetNote(status)
	j.finish()
	c.publishJob(j)
	c.notifyJob(j, j.snapshot())

	if status == serve.StatusDone {
		c.metrics.jobsCompleted.Inc()
	} else {
		c.metrics.jobsFailed.Inc()
	}
	if c.journal != nil {
		// Failed jobs are journaled done too: the failure is deterministic,
		// so replaying it as retriable would only fail again.
		if err := c.journal.jobDone(j.id, status); err != nil && c.opts.Log != nil {
			c.opts.Log.Warn("journal write failed", "job", j.id, "err", err.Error())
		}
	}
	if c.opts.Log != nil {
		c.opts.Log.Info("job finished", "job", j.id, "status", status)
	}
}

// retireRetriable hands an interrupted job back as retriable during
// drain. Its content-addressed ID makes resubmission idempotent; no
// journal completion is written, so a crashed-and-restarted coordinator
// reports it retriable too.
func (c *Coordinator) retireRetriable(j *cjob, outstanding []*leaseRef) {
	for _, lr := range outstanding {
		if n := j.owned(lr); n > 0 {
			lr.w.metrics.pending.Add(-int64(n))
		}
	}
	j.mu.Lock()
	remaining := len(j.cells) - j.completed - j.failed
	j.status = serve.StatusRetriable
	j.mu.Unlock()
	j.finish()
	c.publishJob(j)
	c.notifyJob(j, j.snapshot())
	c.metrics.jobsRetriable.Inc()
	c.metrics.pendingCells.Add(-int64(remaining))
	if c.opts.Log != nil {
		c.opts.Log.Info("job retired retriable", "job", j.id, "remaining", remaining)
	}
}
