package cluster

import (
	"testing"

	"repro/internal/serve"
)

// TestShardKeyGolden pins the exact SHA-256 shard keys (and the
// rendezvous choices derived from them). The shard key is a wire-stable
// contract: every cell's cache affinity across the whole cluster hangs
// off these bytes, so an accidental change to the domain label, the
// field order, or the formatting must fail this test loudly rather than
// silently reshuffle — and cold-start — every worker's result cache.
func TestShardKeyGolden(t *testing.T) {
	p := serve.Params{Scale: 1, Seed: 1994}
	cases := []struct {
		name     string
		params   serve.Params
		app, alg string
		procs    int
		infinite bool
		engine   string
		want     string
	}{
		{
			name: "baseline cell", params: p,
			app: "MP3D", alg: "LOAD-BAL", procs: 4, engine: serve.EngineGuarded,
			want: "bcd927c80050348a8d800736925555f74cdadb84268954ee314c224897eccd44",
		},
		{
			name: "engine changes the key", params: p,
			app: "MP3D", alg: "LOAD-BAL", procs: 4, engine: serve.EngineReference,
			want: "6a3537878fb147bd8a36dd3003672ecb28222cb851ea1fb020b95fe698486bba",
		},
		{
			name: "infinite cache mode changes the key", params: p,
			app: "MP3D", alg: "LOAD-BAL", procs: 4, infinite: true, engine: serve.EngineGuarded,
			want: "14806be521e12ed7cee4f86bbfca3b0bc67d1b443eaece6b0bd0d29c1baf2f5b",
		},
		{
			name: "params change the key", params: serve.Params{Scale: 0.25, Seed: 7},
			app: "Gauss", alg: "SHARE-ADDR", procs: 8, engine: serve.EngineGuarded,
			want: "090c5b4d6c491b79bb6a41361692a29d1a3ca6e6f397d4fd3abec8df03fbfe31",
		},
	}
	for _, c := range cases {
		got := CellShardKey(c.params, c.app, c.alg, c.procs, c.infinite, c.engine).String()
		if got != c.want {
			t.Errorf("%s:\n  got  %s\n  want %s", c.name, got, c.want)
		}
	}
}

// TestRendezvousGolden pins the rendezvous winners for a fixed worker
// set: the routing function is part of the same affinity contract as the
// key bytes.
func TestRendezvousGolden(t *testing.T) {
	workers := []string{"w0", "w1", "w2", "w3"}
	p := serve.Params{Scale: 1, Seed: 1994}
	cases := []struct {
		app, alg string
		procs    int
		want     string
	}{
		{"MP3D", "LOAD-BAL", 4, "w1"},
		{"MP3D", "RANDOM", 4, "w2"},
		{"Gauss", "LOAD-BAL", 2, "w3"},
		{"Water", "SHARE-ADDR", 8, "w0"},
	}
	for _, c := range cases {
		key := CellShardKey(p, c.app, c.alg, c.procs, false, serve.EngineGuarded)
		if got := pickWorker(key, workers); got != c.want {
			t.Errorf("%s/%s/p%d routed to %s, want %s", c.app, c.alg, c.procs, got, c.want)
		}
		// Order independence: rendezvous must not care how the membership
		// snapshot happens to be ordered.
		rev := []string{"w3", "w2", "w1", "w0"}
		if got := pickWorker(key, rev); got != c.want {
			t.Errorf("%s/%s/p%d order-dependent: reversed membership routed to %s", c.app, c.alg, c.procs, got)
		}
	}
	// Minimal-reshuffle property: removing a non-winning worker leaves
	// the choice intact.
	key := CellShardKey(p, "MP3D", "LOAD-BAL", 4, false, serve.EngineGuarded)
	winner := pickWorker(key, workers)
	var without []string
	for _, w := range workers {
		if w != winner {
			without = append(without, w)
		}
	}
	reduced := append([]string{}, without[1:]...)
	if got := pickWorker(key, append(reduced, winner)); got != winner {
		t.Errorf("removing bystander %s moved the cell from %s to %s", without[0], winner, got)
	}
	if pickWorker(key, nil) != "" {
		t.Error("empty membership must route nowhere")
	}
}
