package cluster

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/resilience"
)

// Crash recovery reuses the MTJ1 journal from internal/resilience. The
// coordinator records three kinds of keys:
//
//	job/<id>            accepted sweep (value: "<cells> <engine>")
//	cell/<id>/<idx>     finished cell (value: its result-cache key)
//	done/<id>           terminal job (value: final status)
//
// A restarted coordinator replays the journal: every job/ without a
// matching done/ comes back as a retriable record, so a polling client
// resubmits the identical content-addressed sweep — the same recovery
// path a graceful drain uses. The journaled cell/ keys are kept and
// cross-checked when the rerun harvests those cells again: a result-key
// mismatch means pre- and post-crash executions diverged, the one
// corruption class idempotent resubmission cannot absorb, and the job
// fails loudly instead of returning silently wrong data.

// coordBinding ties a journal file to this protocol version.
const coordBinding = "mtcoord-v1"

// coordJournal is the mutex-wrapped journal plus the replayed cell keys.
type coordJournal struct {
	mu sync.Mutex
	j  *resilience.Journal
	// prior maps "cell/<job>/<idx>" to the pre-crash result key.
	prior map[string]string
}

// openCoordJournal opens (or creates) the journal and returns the IDs of
// jobs interrupted by a crash: accepted, never completed.
func openCoordJournal(path string) (*coordJournal, []string, error) {
	j, err := resilience.OpenJournal(path, coordBinding)
	if err != nil {
		return nil, nil, err
	}
	cj := &coordJournal{j: j, prior: make(map[string]string)}
	var interrupted []string
	j.Each(func(key, value string) {
		if id, ok := strings.CutPrefix(key, "job/"); ok {
			if _, done := j.Done("done/" + id); !done {
				interrupted = append(interrupted, id)
			}
		}
		if strings.HasPrefix(key, "cell/") {
			cj.prior[key] = value
		}
	})
	return cj, interrupted, nil
}

// jobAccepted records a sweep acceptance (idempotent per ID).
func (cj *coordJournal) jobAccepted(id string, cells int, engine string) error {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	key := "job/" + id
	if _, ok := cj.j.Done(key); ok {
		return nil
	}
	return cj.j.Record(key, fmt.Sprintf("%d %s", cells, engine))
}

// cellDone records one finished cell's result key, cross-checking any
// pre-crash record for the same cell. A mismatch is the divergence error.
func (cj *coordJournal) cellDone(jobID string, idx int, resultKey string) error {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	key := fmt.Sprintf("cell/%s/%d", jobID, idx)
	if prev, ok := cj.prior[key]; ok && prev != resultKey {
		return fmt.Errorf("journal divergence: cell %s re-executed to key %s, journal says %s", key, resultKey, prev)
	}
	if _, ok := cj.j.Done(key); ok {
		return nil // already journaled this run (duplicate harvest)
	}
	return cj.j.Record(key, resultKey)
}

// jobDone records a job's terminal status.
func (cj *coordJournal) jobDone(id, status string) error {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	key := "done/" + id
	if _, ok := cj.j.Done(key); ok {
		return nil
	}
	return cj.j.Record(key, status)
}

func (cj *coordJournal) close() {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	cj.j.Close()
}
