package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/serve/rescache"
	"repro/internal/serve/webhook"
	"repro/internal/store"
	"repro/internal/workload"
)

// Options configures a Coordinator.
type Options struct {
	// HeartbeatTimeout declares a worker dead after this much heartbeat
	// silence (default 2s). Dead workers' in-flight cells are requeued.
	HeartbeatTimeout time.Duration
	// PollInterval paces the per-job scheduling loop: lease harvesting,
	// granting, death sweeps and steals (default 10ms).
	PollInterval time.Duration
	// LeaseChunk bounds the cells granted per lease (default 16). Smaller
	// chunks give stealing finer granularity; larger ones amortize
	// round-trips.
	LeaseChunk int
	// StealMin is the minimum pending cells a lease must hold before an
	// idle worker steals from it (default 2: never steal a lone tail cell
	// that is about to run anyway).
	StealMin int
	// Journal, when non-empty, is the path of an MTJ1 journal recording
	// accepted jobs, per-cell result keys and completions. A restarted
	// coordinator replays it: interrupted jobs answer "retriable" (the
	// client resubmits the identical content-addressed sweep), and
	// post-crash re-executions are cross-checked cell by cell against the
	// journaled result keys.
	Journal string
	// Log receives operational messages; nil discards them.
	Log *slog.Logger
	// SpanCapacity bounds the coordinator's span store
	// (obs.DefaultSpanCapacity when 0).
	SpanCapacity int
	// DisableTelemetry turns off distributed tracing and the job-progress
	// event bus. Histograms stay on — they are three atomic adds.
	DisableTelemetry bool
	// Store, when non-nil, is the coordinator's durable result tier:
	// every harvested cell result is persisted keyed by its shard
	// address, and a resubmitted (or crash-recovered) sweep restores
	// stored cells without leasing them out — the cluster warm-starts
	// from disk. The caller owns the store's lifecycle (Close after
	// Drain).
	Store *store.Store
	// Webhooks, when non-nil, delivers terminal job states for sweeps
	// submitted with a webhook_url. The caller owns the dispatcher's
	// lifecycle (Close after Drain).
	Webhooks *webhook.Dispatcher
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 2 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 10 * time.Millisecond
	}
	if o.LeaseChunk <= 0 {
		o.LeaseChunk = 16
	}
	if o.StealMin <= 0 {
		o.StealMin = 2
	}
	return o
}

// worker is one registered mtserve instance.
type worker struct {
	id      string
	metrics workerMetrics

	mu       sync.Mutex
	url      string
	cl       *client.Client
	lastBeat time.Time
	dead     bool
}

// alive reports whether the worker is routable: not transport-dead and
// heartbeating within the timeout.
func (w *worker) alive(now time.Time, timeout time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && now.Sub(w.lastBeat) <= timeout
}

func (w *worker) client() *client.Client {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cl
}

// Coordinator shards sweeps across registered mtserve workers. Create
// with New, serve via Handler, stop with Drain.
type Coordinator struct {
	opts    Options
	metrics *coordMetrics
	journal *coordJournal  // nil when journaling is off
	spans   *obs.SpanStore // nil when telemetry is disabled
	bus     *obs.Bus       // nil when telemetry is disabled

	mu       sync.Mutex
	workers  map[string]*worker
	jobs     map[string]*cjob
	order    []string // job insertion order, for eviction
	draining bool

	wg sync.WaitGroup
}

// New builds a Coordinator. With Options.Journal set, an existing
// journal is replayed first: jobs accepted but not completed before the
// crash come back as retriable records.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		metrics: newCoordMetrics(),
		workers: make(map[string]*worker),
		jobs:    make(map[string]*cjob),
	}
	if !opts.DisableTelemetry {
		c.spans = obs.NewSpanStore(opts.SpanCapacity)
		c.bus = obs.NewBus(c.metrics.streamDropped)
	}
	if opts.Journal != "" {
		j, interrupted, err := openCoordJournal(opts.Journal)
		if err != nil {
			return nil, err
		}
		c.journal = j
		for _, id := range interrupted {
			c.jobs[id] = retriableJob(id)
			c.order = append(c.order, id)
			c.metrics.jobsRetriable.Inc()
			if opts.Log != nil {
				opts.Log.Info("journal recovery: job marked retriable", "job", id)
			}
		}
	}
	return c, nil
}

// Metrics exposes the coordinator's metric registry.
func (c *Coordinator) Metrics() *obs.MetricSet { return c.metrics.set }

// Draining reports whether Drain has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain refuses new work, hands in-flight jobs back as retriable (their
// content-addressed IDs make resubmission to a restarted coordinator
// idempotent) and waits for the schedulers to exit.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.wg.Wait()
	if c.journal != nil {
		c.journal.close()
	}
}

// register adds or refreshes a worker. Re-registration with a new URL
// replaces the client (a restarted worker on a new port); either way the
// worker is revived and its heartbeat clock reset.
func (c *Coordinator) register(id, url string, now time.Time) (int, error) {
	c.mu.Lock()
	w, ok := c.workers[id]
	if !ok {
		if len(c.workers) >= MaxWorkers {
			c.mu.Unlock()
			return 0, fmt.Errorf("cluster is full (%d workers)", MaxWorkers)
		}
		w = &worker{id: id, metrics: c.metrics.forWorker(id)}
		c.workers[id] = w
	}
	c.mu.Unlock()

	w.mu.Lock()
	if w.cl == nil || w.url != url {
		w.url = url
		w.cl = client.New(url)
	}
	w.lastBeat = now
	w.dead = false
	w.mu.Unlock()

	c.metrics.workersTotal.Inc()
	live := c.liveWorkerIDs(now)
	c.metrics.workersLive.Set(int64(len(live)))
	if c.opts.Log != nil {
		c.opts.Log.Info("worker registered", "worker", id, "url", url, "live", len(live))
	}
	return len(live), nil
}

// heartbeat refreshes a worker's liveness; unknown workers error so the
// agent re-registers (a restarted coordinator forgot everyone).
func (c *Coordinator) heartbeat(id string, now time.Time) error {
	c.mu.Lock()
	w, ok := c.workers[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown worker %s", id)
	}
	w.mu.Lock()
	w.lastBeat = now
	w.dead = false
	w.mu.Unlock()
	c.metrics.heartbeats.Inc()
	c.metrics.workersLive.Set(int64(len(c.liveWorkerIDs(now))))
	return nil
}

// markDead declares a worker unroutable after a transport failure (the
// heartbeat-timeout path flows through alive() instead). A later
// heartbeat or re-registration revives it.
func (c *Coordinator) markDead(w *worker, cause error) {
	w.mu.Lock()
	was := w.dead
	w.dead = true
	w.mu.Unlock()
	if !was {
		c.metrics.workerDeaths.Inc()
		c.metrics.workersLive.Set(int64(len(c.liveWorkerIDs(time.Now()))))
		if c.opts.Log != nil {
			c.opts.Log.Warn("worker declared dead", "worker", w.id, "cause", fmt.Sprint(cause))
		}
	}
}

// liveWorkerIDs snapshots the currently routable workers, sorted (the
// deterministic membership view every scheduling decision uses).
func (c *Coordinator) liveWorkerIDs(now time.Time) []string {
	c.mu.Lock()
	ids := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if w.alive(now, c.opts.HeartbeatTimeout) {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// workerByID returns a registered worker.
func (c *Coordinator) workerByID(id string) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[id]
}

// Cluster-side cell lifecycle.
const (
	cPending uint8 = iota // waiting for a lease
	cLeased               // granted to a worker, result outstanding
	cDone
	cFailed
)

// cellIdent names one sweep cell and its routing address.
type cellIdent struct {
	app, alg string
	procs    int
	shard    rescache.Key
}

// cjob is one accepted sweep on the coordinator.
type cjob struct {
	id       string
	params   serve.Params
	engine   string
	infinite bool
	cells    []cellIdent

	// trace is the sweep's distributed-trace context and span its root
	// span, ended at the terminal state (zero/nil when telemetry is
	// disabled). Write-once before runJob starts, read-only after.
	trace obs.SpanContext
	span  *obs.ActiveSpan
	// webhookURL is the sweep's terminal-state delivery target ("" for
	// none). Write-once before runJob starts, read-only after.
	webhookURL string

	mu        sync.Mutex
	status    string
	states    []uint8
	leaseOf   []string // current owning lease ID per cell ("" when pending)
	results   []serve.CellResult
	completed int
	failed    int
	errmsg    string

	doneOnce sync.Once
	done     chan struct{} // closed at the terminal state
}

// finish closes the done channel and ends the root span, exactly once
// across the finalize and retire paths.
func (j *cjob) finish() {
	j.doneOnce.Do(func() {
		close(j.done)
		j.span.End()
	})
}

func retriableJob(id string) *cjob {
	j := &cjob{id: id, status: serve.StatusRetriable, done: make(chan struct{})}
	close(j.done)
	return j
}

func (j *cjob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case serve.StatusDone, serve.StatusFailed, serve.StatusRetriable, serve.StatusCanceled:
		return true
	}
	return false
}

// snapshot renders the job's wire status, with results attached once
// done (same polling contract as mtserve).
func (j *cjob) snapshot() serve.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := serve.JobStatus{
		Job:       j.id,
		Status:    j.status,
		Cells:     len(j.cells),
		Completed: j.completed,
		Error:     j.errmsg,
		Trace:     j.trace.Trace,
	}
	if j.status == serve.StatusDone {
		st.Results = append([]serve.CellResult(nil), j.results...)
	}
	return st
}

// resultOf snapshots one cell's recorded result.
func (j *cjob) resultOf(ci int) serve.CellResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results[ci]
}

// pendingIndices returns the cells waiting for a lease.
func (j *cjob) pendingIndices() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []int
	for i, s := range j.states {
		if s == cPending {
			out = append(out, i)
		}
	}
	return out
}

// finished reports whether every cell is accounted for.
func (j *cjob) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed+j.failed == len(j.cells)
}

// errNoWorkers refuses sweeps while the cluster has no live members.
var errNoWorkers = errors.New("no live workers registered")

// errDraining refuses work during shutdown.
var errDraining = errors.New("coordinator is draining")

// normalizeEngine maps "" to the default engine label.
func normalizeEngine(e string) string {
	if e == "" {
		return serve.EngineGuarded
	}
	return e
}

// resolveParams fills nil request params with the library defaults,
// exactly as the workers do — coordinator and worker must agree on cell
// identity.
func resolveParams(p *serve.Params) serve.Params {
	if p != nil {
		return *p
	}
	d := workload.DefaultParams()
	return serve.Params{Scale: d.Scale, Seed: d.Seed}
}

// SubmitSweep accepts a sweep for distributed execution and returns its
// job record. An identical sweep already known is returned as-is with
// existing=true; a retriable record (drain or crash recovery) is
// replaced by a fresh run — resubmission is how clients recover.
func (c *Coordinator) SubmitSweep(req *serve.SweepRequest) (st serve.JobStatus, existing bool, err error) {
	return c.SubmitSweepTraced(req, obs.SpanContext{})
}

// SubmitSweepTraced is SubmitSweep joining the caller's distributed
// trace (a fresh trace is minted when ctx is zero and telemetry is on).
func (c *Coordinator) SubmitSweepTraced(req *serve.SweepRequest, ctx obs.SpanContext) (st serve.JobStatus, existing bool, err error) {
	if c.Draining() {
		return serve.JobStatus{}, false, errDraining
	}
	now := time.Now()
	live := c.liveWorkerIDs(now)
	if len(live) == 0 {
		return serve.JobStatus{}, false, errNoWorkers
	}
	params := resolveParams(req.Params)
	engine := normalizeEngine(req.Engine)
	id := serve.SweepJobID(params, req, engine)

	c.mu.Lock()
	if prev, ok := c.jobs[id]; ok {
		retriable := prev.terminal() && prev.snapshot().Status == serve.StatusRetriable
		if !retriable {
			c.mu.Unlock()
			return prev.snapshot(), true, nil
		}
		delete(c.jobs, id) // forget the stale record, rerun below
	}
	j := &cjob{
		id:         id,
		params:     params,
		engine:     engine,
		infinite:   req.Infinite,
		webhookURL: req.WebhookURL,
		status:     serve.StatusQueued,
		done:       make(chan struct{}),
	}
	for _, app := range req.Apps {
		for _, alg := range req.Algorithms {
			for _, p := range req.Procs {
				j.cells = append(j.cells, cellIdent{
					app: app, alg: alg, procs: p,
					shard: CellShardKey(params, app, alg, p, req.Infinite, engine),
				})
			}
		}
	}
	j.states = make([]uint8, len(j.cells))
	j.leaseOf = make([]string, len(j.cells))
	j.results = make([]serve.CellResult, len(j.cells))
	for i, cell := range j.cells {
		j.results[i] = serve.CellResult{App: cell.app, Algorithm: cell.alg, Procs: cell.procs}
	}
	if c.spans != nil {
		// Root span for the whole distributed sweep; every lease grant,
		// steal, requeue and worker-side span hangs under it.
		if !ctx.Valid() {
			ctx = obs.NewTrace()
		}
		j.span = c.spans.Start(ctx, coordService, "sweep")
		j.trace = j.span.Context()
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.evictLocked()
	c.mu.Unlock()

	c.metrics.jobsAccepted.Inc()
	c.metrics.cellsTotal.Add(int64(len(j.cells)))
	c.metrics.pendingCells.Add(int64(len(j.cells)))
	if c.journal != nil {
		if jerr := c.journal.jobAccepted(id, len(j.cells), engine); jerr != nil && c.opts.Log != nil {
			c.opts.Log.Warn("journal write failed", "job", id, "err", jerr.Error())
		}
	}
	c.publishJob(j)
	c.wg.Add(1)
	go c.runJob(j)
	return j.snapshot(), false, nil
}

// Job returns a job's status by ID.
func (c *Coordinator) Job(id string) (serve.JobStatus, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return serve.JobStatus{}, false
	}
	return j.snapshot(), true
}

// evictLocked bounds retained terminal jobs (caller holds c.mu).
func (c *Coordinator) evictLocked() {
	const maxTerminal = 256
	terminal := 0
	for _, id := range c.order {
		if j, ok := c.jobs[id]; ok && j.terminal() {
			terminal++
		}
	}
	if terminal <= maxTerminal {
		return
	}
	keep := c.order[:0]
	for _, id := range c.order {
		j, ok := c.jobs[id]
		if !ok {
			continue
		}
		if terminal > maxTerminal && j.terminal() {
			delete(c.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	c.order = keep
}
