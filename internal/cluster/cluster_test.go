package cluster

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---- harness -------------------------------------------------------------

// testWorker is one in-process mtserve joined to a test cluster.
type testWorker struct {
	id    string
	srv   *serve.Server
	ts    *httptest.Server
	agent *Agent

	killed bool
}

// kill makes the worker unreachable (transport-dead) and silent
// (no heartbeats) — the crash scenario.
func (w *testWorker) kill() {
	if w.killed {
		return
	}
	w.killed = true
	w.agent.Stop()
	w.ts.Close()
	w.srv.Drain()
}

// partition stops heartbeats but leaves the HTTP server up: the worker
// keeps computing, the coordinator just cannot count on it.
func (w *testWorker) partition() {
	w.agent.Stop()
}

// testCluster is a coordinator plus N workers wired over real HTTP.
type testCluster struct {
	t     *testing.T
	coord *Coordinator
	ts    *httptest.Server

	workers []*testWorker
}

// testCoordOptions are fast-paced defaults for tests.
func testCoordOptions() Options {
	return Options{
		HeartbeatTimeout: 300 * time.Millisecond,
		PollInterval:     2 * time.Millisecond,
		LeaseChunk:       4,
	}
}

func startCoordinator(t *testing.T, opts Options) *testCluster {
	t.Helper()
	coord, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{t: t, coord: coord, ts: httptest.NewServer(coord.Handler())}
	t.Cleanup(func() {
		for _, w := range tc.workers {
			w.kill()
		}
		tc.coord.Drain()
		tc.ts.Close()
	})
	return tc
}

// addWorker starts one worker and joins it to the cluster.
func (tc *testCluster) addWorker(id string, wopts serve.Options) *testWorker {
	tc.t.Helper()
	if wopts.SampleEvery == 0 {
		wopts.SampleEvery = -1
	}
	// Mirror production (cmd/mtserve): a clustered worker's spans carry
	// its worker ID, so merged traces attribute work per worker.
	if wopts.ServiceName == "" {
		wopts.ServiceName = id
	}
	srv := serve.NewServer(wopts)
	ts := httptest.NewServer(srv.Handler())
	w := &testWorker{
		id:  id,
		srv: srv,
		ts:  ts,
		agent: StartAgent(tc.ts.URL, id, ts.URL,
			50*time.Millisecond, nil),
	}
	tc.workers = append(tc.workers, w)
	return w
}

// waitLive blocks until the coordinator sees n live workers.
func (tc *testCluster) waitLive(n int) {
	tc.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(tc.coord.liveWorkerIDs(time.Now())) >= n {
			return
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("cluster never reached %d live workers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startCluster brings up a coordinator with n identical workers.
func startCluster(t *testing.T, n int, wopts serve.Options) *testCluster {
	t.Helper()
	tc := startCoordinator(t, testCoordOptions())
	for i := 0; i < n; i++ {
		tc.addWorker(fmt.Sprintf("w%d", i), wopts)
	}
	tc.waitLive(n)
	return tc
}

func (tc *testCluster) client() *client.Client {
	cl := client.New(tc.ts.URL)
	cl.MaxRetries = 64
	cl.RetryWait = 10 * time.Millisecond
	return cl
}

// testDims is the small sweep the differential tests use: cheap
// algorithms, tiny machines, 8 cells.
func testDims() (apps, algs []string, procs []int) {
	return []string{"MP3D", "Gauss"}, []string{"LOAD-BAL", "RANDOM"}, []int{2, 4}
}

const (
	testScale = 0.1
	testSeed  = int64(7)
)

// groundTruth computes the library results for testDims.
func groundTruth(t *testing.T) (map[loadgen.Cell]*sim.Result, []loadgen.Cell) {
	t.Helper()
	apps, algs, procs := testDims()
	cells := loadgen.Mix(apps, algs, procs)
	want, err := loadgen.GroundTruth(testScale, testSeed, cells)
	if err != nil {
		t.Fatal(err)
	}
	return want, cells
}

// runSweep submits the testDims sweep with the given engine and waits it
// to done, failing the test otherwise.
func runSweep(t *testing.T, cl *client.Client, engine string) *serve.JobStatus {
	t.Helper()
	apps, algs, procs := testDims()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	acc, err := cl.Sweep(&serve.SweepRequest{
		Params: &params, Apps: apps, Algorithms: algs, Procs: procs, Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != serve.StatusDone {
		t.Fatalf("sweep ended %s: %s", st.Status, st.Error)
	}
	return st
}

// assertResults checks a finished sweep against ground truth: every cell
// present exactly once (the results slice is cell-ordered, so loss or
// duplication would show as a count or identity mismatch) and its result
// deeply equal to the direct library run.
func assertResults(t *testing.T, st *serve.JobStatus, cells []loadgen.Cell, want map[loadgen.Cell]*sim.Result) {
	t.Helper()
	if len(st.Results) != len(cells) {
		t.Fatalf("sweep returned %d cells, want %d", len(st.Results), len(cells))
	}
	for i, r := range st.Results {
		c := loadgen.Cell{App: r.App, Alg: r.Algorithm, Procs: r.Procs}
		if c != cells[i] {
			t.Fatalf("result %d is cell %+v, want %+v (lost or reordered cell)", i, c, cells[i])
		}
		if !reflect.DeepEqual(r.Result, want[c]) {
			t.Errorf("cell %+v diverged from the direct library result", c)
		}
	}
}

// ---- differential tests --------------------------------------------------

// TestClusterSweepMatchesLocal: the tentpole differential — the same
// sweep through a coordinator and 4 workers must deep-equal the direct
// library results, cell for cell, on both engines.
func TestClusterSweepMatchesLocal(t *testing.T) {
	want, cells := groundTruth(t)
	for _, engine := range []string{serve.EngineGuarded, serve.EngineReference} {
		t.Run(engine, func(t *testing.T) {
			// Journaled, per the clustering acceptance bar: the journal's
			// per-cell divergence tripwire rides along the differential.
			opts := testCoordOptions()
			opts.Journal = filepath.Join(t.TempDir(), "coord.mtj")
			tc := startCoordinator(t, opts)
			for i := 0; i < 4; i++ {
				tc.addWorker(fmt.Sprintf("w%d", i), serve.Options{Workers: 2})
			}
			tc.waitLive(4)
			st := runSweep(t, tc.client(), engine)
			assertResults(t, st, cells, want)

			snap := tc.coord.Metrics().Snapshot()
			if got := snap["coordinator_cells_completed_total"]; got != int64(len(cells)) {
				t.Errorf("coordinator recorded %d completions for %d cells", got, len(cells))
			}
			if snap["coordinator_pending_cells"] != 0 {
				t.Errorf("pending cells gauge %d after completion", snap["coordinator_pending_cells"])
			}
		})
	}
}

// TestClusterSimulateProxyMatchesWorker: /v1/simulate through the
// coordinator — including explicit placements, on both engines — returns
// exactly what a worker returns directly.
func TestClusterSimulateProxyMatchesWorker(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 2})
	params := serve.Params{Scale: testScale, Seed: testSeed}
	direct := client.New(tc.workers[0].ts.URL)
	viaCoord := tc.client()

	// An explicit placement, built the way experiments -remote builds
	// them: through the library, then shipped verbatim.
	copts := core.DefaultOptions()
	copts.Params = workload.Params{Scale: testScale, Seed: testSeed}
	pl, err := core.NewSuite(copts).Place("MP3D", "SHARE-ADDR", 4)
	if err != nil {
		t.Fatal(err)
	}

	reqs := []*serve.SimulateRequest{
		{Params: &params, App: "MP3D", Algorithm: "LOAD-BAL", Procs: 4},
		{Params: &params, App: "Gauss", Algorithm: "RANDOM", Procs: 2, Engine: serve.EngineReference},
		{Params: &params, App: "MP3D", Procs: 4,
			Placement: &serve.PlacementSpec{Algorithm: pl.Algorithm, Clusters: pl.Clusters}},
	}
	for i, req := range reqs {
		wantResp, err := direct.Simulate(req)
		if err != nil {
			t.Fatalf("request %d direct: %v", i, err)
		}
		gotResp, err := viaCoord.Simulate(req)
		if err != nil {
			t.Fatalf("request %d via coordinator: %v", i, err)
		}
		if !reflect.DeepEqual(gotResp.Result, wantResp.Result) {
			t.Errorf("request %d: coordinator proxy diverged from direct worker result", i)
		}
		if gotResp.Key != wantResp.Key {
			t.Errorf("request %d: result key %q via coordinator, %q direct", i, gotResp.Key, wantResp.Key)
		}
	}
}

// TestClusterAdviseProxyMatchesWorker: /v1/advise through the
// coordinator returns exactly what a worker answers directly, for both
// the measured app source and a client-supplied pair matrix; a malformed
// request is rejected with the worker's own status mirrored.
func TestClusterAdviseProxyMatchesWorker(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 2})
	params := serve.Params{Scale: testScale, Seed: testSeed}
	direct := client.New(tc.workers[0].ts.URL)
	viaCoord := tc.client()

	reqs := []*serve.AdviseRequest{
		{Params: &params, App: "MP3D", Procs: 4},
		{Pair: [][]uint64{
			{0, 0, 500, 0},
			{0, 0, 0, 500},
			{500, 0, 0, 0},
			{0, 500, 0, 0},
		},
			Lengths:    []uint64{10, 10, 10, 10},
			Procs:      2,
			Current:    &serve.PlacementSpec{Algorithm: "SEED", Clusters: [][]int{{0, 1}, {2, 3}}},
			MemLatency: 30},
	}
	for i, req := range reqs {
		want, err := direct.Advise(req)
		if err != nil {
			t.Fatalf("request %d direct: %v", i, err)
		}
		got, err := viaCoord.Advise(req)
		if err != nil {
			t.Fatalf("request %d via coordinator: %v", i, err)
		}
		// The trace ID is per-request telemetry; everything else must
		// proxy through untouched.
		want.Trace, got.Trace = "", ""
		if !reflect.DeepEqual(got, want) {
			t.Errorf("request %d: coordinator advise diverged from direct worker answer", i)
		}
	}

	// A client error is the worker's verdict, mirrored — not a 503.
	_, err := viaCoord.Advise(&serve.AdviseRequest{Params: &params, App: "NoSuchApp", Procs: 4})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Errorf("unknown app through coordinator: %v, want a mirrored 400", err)
	}

	// Advise keeps working after the preferred worker dies: the
	// coordinator fails over to another candidate.
	req := &serve.AdviseRequest{Params: &params, App: "Gauss", Procs: 2}
	want, err := viaCoord.Advise(req)
	if err != nil {
		t.Fatal(err)
	}
	tc.workers[0].kill()
	tc.workers[1].kill()
	got, err := viaCoord.Advise(req)
	if err != nil {
		t.Fatalf("advise after killing two workers: %v", err)
	}
	want.Trace, got.Trace = "", ""
	if !reflect.DeepEqual(got, want) {
		t.Error("failover advise answer differs")
	}
}

// TestClusterSimulateAffinity: repeated identical cells land on the same
// worker (rendezvous routing), so the second request is a cache hit
// somewhere rather than a re-simulation everywhere.
func TestClusterSimulateAffinity(t *testing.T) {
	tc := startCluster(t, 4, serve.Options{Workers: 2})
	cl := tc.client()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	req := &serve.SimulateRequest{Params: &params, App: "MP3D", Algorithm: "LOAD-BAL", Procs: 4}

	for i := 0; i < 3; i++ {
		if _, err := cl.Simulate(req); err != nil {
			t.Fatal(err)
		}
	}
	var hits, entries uint64
	for _, w := range tc.workers {
		cs := w.srv.CacheStats()
		hits += cs.Hits
		entries += uint64(cs.Entries)
	}
	if entries != 1 {
		t.Errorf("cell simulated on %d workers, want exactly 1 (affinity broken)", entries)
	}
	if hits != 2 {
		t.Errorf("2 repeats produced %d cache hits, want 2", hits)
	}
}

// ---- behavior tests ------------------------------------------------------

// TestClusterIdempotentResubmit: the same sweep twice returns the same
// content-addressed job, flagged existing.
func TestClusterIdempotentResubmit(t *testing.T) {
	tc := startCluster(t, 2, serve.Options{Workers: 2})
	cl := tc.client()
	st := runSweep(t, cl, "")

	apps, algs, procs := testDims()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	acc, err := cl.Sweep(&serve.SweepRequest{Params: &params, Apps: apps, Algorithms: algs, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Existing {
		t.Error("identical resubmission not flagged existing")
	}
	if acc.Job != st.Job {
		t.Errorf("resubmission mapped to job %s, want %s", acc.Job, st.Job)
	}
}

// TestClusterRefusesWithoutWorkers: an empty cluster answers 503
// retriable — the client's retry loop, not an error, is the contract.
func TestClusterRefusesWithoutWorkers(t *testing.T) {
	tc := startCoordinator(t, testCoordOptions())
	cl := client.New(tc.ts.URL)
	apps, algs, procs := testDims()
	_, err := cl.Sweep(&serve.SweepRequest{Apps: apps, Algorithms: algs, Procs: procs})
	if err == nil {
		t.Fatal("sweep accepted with no workers")
	}
	if !client.IsRetriable(err) {
		t.Fatalf("refusal not retriable: %v", err)
	}
}

// TestWorkStealingDrainsStraggler: with one worker slowed to a crawl,
// idle workers steal its tail; the sweep still finishes byte-identical
// and the steal counters move. The 24-cell cluster mix guarantees the
// straggler's rendezvous share exceeds the steal threshold.
func TestWorkStealingDrainsStraggler(t *testing.T) {
	apps, algs, procs := loadgen.ClusterDims()
	cells := loadgen.ClusterMix()
	want, err := loadgen.GroundTruth(testScale, testSeed, cells)
	if err != nil {
		t.Fatal(err)
	}

	tc := startCoordinator(t, testCoordOptions())
	tc.addWorker("slow", serve.Options{
		Workers:     1,
		SampleEvery: -1,
		BeforeCell:  func() { time.Sleep(150 * time.Millisecond) },
	})
	tc.addWorker("fast0", serve.Options{Workers: 2})
	tc.addWorker("fast1", serve.Options{Workers: 2})
	tc.waitLive(3)

	cl := tc.client()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	acc, err := cl.Sweep(&serve.SweepRequest{
		Params: &params, Apps: apps, Algorithms: algs, Procs: procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != serve.StatusDone {
		t.Fatalf("sweep ended %s: %s", st.Status, st.Error)
	}
	assertResults(t, st, cells, want)

	snap := tc.coord.Metrics().Snapshot()
	if snap["coordinator_steals_total"] == 0 {
		t.Error("no cells were stolen from the straggler")
	}
}

// TestClusterHealthAndMetrics: the coordinator's health reports its role
// and live membership; /metrics carries the cluster-wide and per-worker
// series.
func TestClusterHealthAndMetrics(t *testing.T) {
	tc := startCluster(t, 2, serve.Options{Workers: 2})
	runSweep(t, tc.client(), "")

	h, err := tc.client().Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" {
		t.Errorf("health role %q, want coordinator", h.Role)
	}
	if h.Workers != 2 {
		t.Errorf("health reports %d live workers, want 2", h.Workers)
	}
	if h.Jobs.Accepted != 1 || h.Jobs.Completed != 1 {
		t.Errorf("health job accounting %+v, want 1 accepted, 1 completed", h.Jobs)
	}

	metrics, err := tc.client().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"coordinator_workers_live", "coordinator_leases_granted_total",
		"coordinator_cells_completed_total", "coordinator_worker_pending_cells_w0",
		"coordinator_worker_steals_total_w1",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
}

// TestRegisterValidation: malformed registrations are rejected at the
// decoder, never reaching the registry.
func TestRegisterValidation(t *testing.T) {
	cases := []struct {
		name string
		req  RegisterRequest
	}{
		{"empty id", RegisterRequest{URL: "http://x"}},
		{"bad id charset", RegisterRequest{Worker: "a b", URL: "http://x"}},
		{"long id", RegisterRequest{Worker: strings.Repeat("a", MaxWorkerID+1), URL: "http://x"}},
		{"empty url", RegisterRequest{Worker: "w"}},
		{"relative url", RegisterRequest{Worker: "w", URL: "/no-host"}},
		{"bad scheme", RegisterRequest{Worker: "w", URL: "ftp://x"}},
		{"long url", RegisterRequest{Worker: "w", URL: "http://" + strings.Repeat("h", MaxWorkerURL)}},
	}
	for _, c := range cases {
		if err := c.req.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := (&RegisterRequest{Worker: "w-1.a_B", URL: "http://127.0.0.1:1"}).Validate(); err != nil {
		t.Errorf("valid registration rejected: %v", err)
	}
}

// ---- journal recovery ----------------------------------------------------

// TestCoordinatorJournalRecovery: a coordinator killed mid-sweep hands
// the job back retriable after restart; resubmission completes it
// byte-identical, and the journaled per-cell keys cross-check clean.
func TestCoordinatorJournalRecovery(t *testing.T) {
	want, cells := groundTruth(t)
	journal := filepath.Join(t.TempDir(), "coord.mtj")

	// First incarnation: accept the sweep, then drain before it can
	// finish (slow worker), leaving job/ without done/ in the journal.
	opts := testCoordOptions()
	opts.Journal = journal
	tc := startCoordinator(t, opts)
	tc.addWorker("w0", serve.Options{
		Workers:     1,
		SampleEvery: -1,
		BeforeCell:  func() { time.Sleep(100 * time.Millisecond) },
	})
	tc.waitLive(1)

	apps, algs, procs := testDims()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	acc, err := tc.client().Sweep(&serve.SweepRequest{Params: &params, Apps: apps, Algorithms: algs, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one cell land in the journal so the rerun cross-checks
	// a pre-crash key.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, ok := tc.coord.Job(acc.Job)
		if ok && st.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before the simulated crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tc.workers[0].kill()
	tc.coord.Drain()
	tc.ts.Close()

	// Second incarnation, same journal: the job must replay retriable.
	opts2 := testCoordOptions()
	opts2.Journal = journal
	tc2 := startCoordinator(t, opts2)
	st, ok := tc2.coord.Job(acc.Job)
	if !ok {
		t.Fatal("restarted coordinator forgot the interrupted job")
	}
	if st.Status != serve.StatusRetriable {
		t.Fatalf("interrupted job replayed %s, want retriable", st.Status)
	}

	// The client-side recovery: poll sees retriable, resubmits the
	// identical sweep, and the rerun completes byte-identical.
	tc2.addWorker("w0", serve.Options{Workers: 2})
	tc2.waitLive(1)
	st2 := runSweep(t, tc2.client(), "")
	if st2.Job != acc.Job {
		t.Fatalf("resubmission mapped to %s, want %s", st2.Job, acc.Job)
	}
	assertResults(t, st2, cells, want)
}

// TestJournalDivergenceDetected: a post-crash re-execution whose result
// key disagrees with the journal must surface as an error, not silently
// overwrite history.
func TestJournalDivergenceDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.mtj")
	cj, interrupted, err := openCoordJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(interrupted) != 0 {
		t.Fatalf("fresh journal replayed %d interrupted jobs", len(interrupted))
	}
	if err := cj.jobAccepted("sw-x", 2, "guarded"); err != nil {
		t.Fatal(err)
	}
	if err := cj.cellDone("sw-x", 0, "key-A"); err != nil {
		t.Fatal(err)
	}
	cj.close()

	cj2, interrupted, err := openCoordJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cj2.close()
	if len(interrupted) != 1 || interrupted[0] != "sw-x" {
		t.Fatalf("interrupted jobs %v, want [sw-x]", interrupted)
	}
	if err := cj2.cellDone("sw-x", 0, "key-A"); err != nil {
		t.Errorf("matching re-execution rejected: %v", err)
	}
	if err := cj2.cellDone("sw-x", 0, "key-B"); err == nil {
		t.Error("diverging re-execution accepted silently")
	}
}
