package cluster

// The coordinator's durable tier: harvested cell results persist in an
// append-only store keyed by their shard address, and a resubmitted
// (or crash-recovered) sweep restores those cells from disk before any
// lease goes out — the cluster warm-starts without re-simulating.
// Terminal job states are announced through the retrying webhook
// dispatcher, same delivery contract as a bare worker.

import (
	"encoding/json"
	"fmt"

	"repro/internal/serve"
	"repro/internal/store"
)

// storedCellResultVersion versions the coordinator's store envelope. A
// version mismatch is a miss (re-execute), never an error.
const storedCellResultVersion = 1

// storedCellResult is the JSON envelope of one harvested cell in the
// durable store, keyed by the cell's shard address. Key repeats the
// address inside the payload so a record can never be restored under
// the wrong cell identity.
type storedCellResult struct {
	V    int              `json:"v"`
	Key  string           `json:"key"`
	Cell serve.CellResult `json:"cell"`
}

// persistCell writes one harvested result behind the job's accounting.
// Failures are the store's to count; the coordinator never blocks or
// errors a job on persistence (re-execution is always correct).
func (c *Coordinator) persistCell(cell cellIdent, cr serve.CellResult) {
	if c.opts.Store == nil || cr.Result == nil {
		return
	}
	payload, err := json.Marshal(storedCellResult{
		V: storedCellResultVersion, Key: cell.shard.String(), Cell: cr,
	})
	if err != nil {
		return
	}
	if err := c.opts.Store.Put(store.Key(cell.shard), payload); err != nil && c.opts.Log != nil {
		c.opts.Log.Warn("store put refused", "key", cell.shard.String(), "err", err.Error())
	}
}

// decodeStoredCellResult unwraps a store payload for cell, verifying
// version, address identity and cell coordinates. Any mismatch means
// the record is unusable for this cell — a miss, not corruption (the
// store's CRC layer already quarantined anything physically damaged).
func decodeStoredCellResult(cell cellIdent, payload []byte) (serve.CellResult, error) {
	var sc storedCellResult
	if err := json.Unmarshal(payload, &sc); err != nil {
		return serve.CellResult{}, err
	}
	if sc.V != storedCellResultVersion {
		return serve.CellResult{}, fmt.Errorf("stored cell version %d, want %d", sc.V, storedCellResultVersion)
	}
	if sc.Key != cell.shard.String() {
		return serve.CellResult{}, fmt.Errorf("stored cell key %s under address %s", sc.Key, cell.shard.String())
	}
	cr := sc.Cell
	if cr.App != cell.app || cr.Algorithm != cell.alg || cr.Procs != cell.procs {
		return serve.CellResult{}, fmt.Errorf("stored cell is %s/%s/p%d, want %s/%s/p%d",
			cr.App, cr.Algorithm, cr.Procs, cell.app, cell.alg, cell.procs)
	}
	if cr.Result == nil {
		return serve.CellResult{}, fmt.Errorf("stored cell has no result")
	}
	return cr, nil
}

// restoreFromStore completes every cell of a fresh job whose result is
// already on disk, before any lease goes out. Restored cells follow the
// recordDone contract: idempotent accounting, a published cell event
// (worker "store"), and the journal cross-check against prior runs.
func (c *Coordinator) restoreFromStore(j *cjob) {
	if c.opts.Store == nil {
		return
	}
	restored := 0
	for ci := range j.cells {
		cell := j.cells[ci]
		payload, ok := c.opts.Store.Get(store.Key(cell.shard))
		if !ok {
			continue
		}
		cr, err := decodeStoredCellResult(cell, payload)
		if err != nil {
			if c.opts.Log != nil {
				c.opts.Log.Warn("store record unusable, re-executing",
					"job", j.id, "cell", ci, "err", err.Error())
			}
			continue
		}
		cr.Cached = true // served from the durable tier, not simulated
		if c.recordRestored(j, ci, cr) {
			restored++
		}
	}
	if restored > 0 {
		if c.opts.Log != nil {
			c.opts.Log.Info("cells restored from store", "job", j.id, "cells", restored)
		}
	}
}

// recordRestored books one store-restored cell, mirroring recordDone's
// idempotent accounting. Reports whether this call completed the cell.
func (c *Coordinator) recordRestored(j *cjob, ci int, cr serve.CellResult) bool {
	j.mu.Lock()
	if j.states[ci] != cPending {
		j.mu.Unlock()
		return false
	}
	j.states[ci] = cDone
	j.results[ci] = cr
	j.completed++
	j.mu.Unlock()

	c.metrics.cellsCompleted.Inc()
	c.metrics.cellsFromStore.Inc()
	c.metrics.pendingCells.Add(-1)
	c.publishCell(j, ci, "store", "done", cr.Key, true, "")
	if c.journal != nil {
		if err := c.journal.cellDone(j.id, ci, cr.Key); err != nil {
			// The stored result disagrees with the journaled key from a
			// prior run: same divergence contract as a harvested cell —
			// fail loudly rather than return silently wrong data.
			j.mu.Lock()
			if j.errmsg == "" {
				j.errmsg = err.Error()
			}
			j.mu.Unlock()
			if c.opts.Log != nil {
				c.opts.Log.Error("journal divergence", "job", j.id, "cell", ci, "err", err.Error())
			}
		}
	}
	return true
}

// notifyJob enqueues the terminal-state webhook for a sweep submitted
// with a webhook_url (same delivery identity and body as a worker's).
func (c *Coordinator) notifyJob(j *cjob, st serve.JobStatus) {
	if c.opts.Webhooks == nil || j.webhookURL == "" {
		return
	}
	body, err := json.Marshal(serve.JobEventOf(st))
	if err != nil {
		return
	}
	id := serve.WebhookDeliveryID(j.id, j.webhookURL, st.Status)
	if err := c.opts.Webhooks.Enqueue(id, j.webhookURL, body); err != nil && c.opts.Log != nil {
		c.opts.Log.Warn("webhook enqueue failed", "job", j.id, "err", err.Error())
	}
}

// syncDurableCounters mirrors the store's and dispatcher's counters
// into /metrics at scrape time.
func (c *Coordinator) syncDurableCounters() {
	if c.opts.Store != nil {
		ss := c.opts.Store.Stats()
		c.metrics.storeHits.Set(int64(ss.Hits))
		c.metrics.storeMisses.Set(int64(ss.Misses))
		c.metrics.storePuts.Set(int64(ss.Puts))
		c.metrics.storeQuarantined.Set(int64(ss.Quarantined))
	}
	if c.opts.Webhooks != nil {
		ws := c.opts.Webhooks.Stats()
		c.metrics.webhookPending.Set(int64(ws.Pending))
		c.metrics.webhookDelivered.Set(int64(ws.Delivered))
		c.metrics.webhookFailed.Set(int64(ws.Failed))
	}
}
