package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/webhook"
	"repro/internal/store"
)

// TestClusterStoreRestoresResubmittedSweep: a sweep harvested in one
// coordinator life is restored entirely from the durable store in the
// next — no cell leases to a worker, every result byte-identical.
func TestClusterStoreRestoresResubmittedSweep(t *testing.T) {
	dir := t.TempDir()
	want, cells := groundTruth(t)

	st1, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts1 := testCoordOptions()
	opts1.Store = st1
	tc1 := startCoordinator(t, opts1)
	tc1.addWorker("w0", serve.Options{Workers: 2})
	tc1.waitLive(1)
	first := runSweep(t, tc1.client(), "")
	assertResults(t, first, cells, want)
	for _, w := range tc1.workers {
		w.kill()
	}
	tc1.coord.Drain()
	tc1.ts.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh coordinator and a fresh worker whose caches are
	// cold, same store directory. The worker must never be leased a cell.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	opts2 := testCoordOptions()
	opts2.Store = st2
	tc2 := startCoordinator(t, opts2)
	tc2.addWorker("w1", serve.Options{Workers: 2})
	tc2.waitLive(1)
	second := runSweep(t, tc2.client(), "")
	assertResults(t, second, cells, want)

	for i, r := range second.Results {
		if !r.Cached {
			t.Errorf("cell %d not marked cached after store restore", i)
		}
	}
	if got := tc2.coord.metrics.cellsFromStore.Value(); got != int64(len(cells)) {
		t.Errorf("cells_from_store = %d, want %d", got, len(cells))
	}
	if got := tc2.coord.metrics.leasesGranted.Value(); got != 0 {
		t.Errorf("second life granted %d leases; want 0 (fully restored)", got)
	}
}

// TestClusterWebhookDeliveredOnFinalize: the coordinator announces a
// sweep's terminal state exactly once, with the same delivery identity a
// worker would use.
func TestClusterWebhookDeliveredOnFinalize(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	var ids []string
	rc := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(body))
		ids = append(ids, r.Header.Get(webhook.DeliveryHeader))
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer rc.Close()

	wh, err := webhook.New(webhook.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	opts := testCoordOptions()
	opts.Webhooks = wh
	tc := startCoordinator(t, opts)
	tc.addWorker("w0", serve.Options{Workers: 2})
	tc.waitLive(1)

	apps, algs, procs := testDims()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	cl := tc.client()
	acc, err := cl.Sweep(&serve.SweepRequest{
		Params: &params, Apps: apps, Algorithms: algs, Procs: procs,
		WebhookURL: rc.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != serve.StatusDone {
		t.Fatalf("sweep ended %s: %s", st.Status, st.Error)
	}
	if !wh.Flush(5 * time.Second) {
		t.Fatal("webhook delivery did not complete")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 {
		t.Fatalf("receiver saw %d deliveries, want 1: %q", len(bodies), bodies)
	}
	var ev serve.JobEvent
	if err := json.Unmarshal([]byte(bodies[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Job != st.Job || ev.Status != serve.StatusDone || ev.Completed != st.Cells {
		t.Fatalf("webhook body = %+v, want terminal snapshot of %s", ev, st.Job)
	}
	if want := serve.WebhookDeliveryID(st.Job, rc.URL, serve.StatusDone); ids[0] != want {
		t.Fatalf("delivery header = %q, want %q", ids[0], want)
	}
}

// TestStoredCellResultEnvelope: the coordinator's store envelope rejects
// version skew, key drift, and identity mismatches as misses.
func TestStoredCellResultEnvelope(t *testing.T) {
	want, cells := groundTruth(t)
	c := cells[0]
	params := serve.Params{Scale: testScale, Seed: testSeed}
	shard := CellShardKey(params, c.App, c.Alg, c.Procs, false, serve.EngineGuarded)
	cell := cellIdent{shard: shard, app: c.App, alg: c.Alg, procs: c.Procs}
	cr := serve.CellResult{
		App: c.App, Algorithm: c.Alg, Procs: c.Procs,
		Key: shard.String(), Result: want[c],
	}

	payload, err := json.Marshal(storedCellResult{V: storedCellResultVersion, Key: shard.String(), Cell: cr})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeStoredCellResult(cell, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != c.App || got.Result == nil {
		t.Fatalf("round trip lost the cell: %+v", got)
	}

	bad := cell
	bad.procs = c.Procs + 1
	if _, err := decodeStoredCellResult(bad, payload); err == nil {
		t.Fatal("identity mismatch accepted")
	}
	skewed, _ := json.Marshal(storedCellResult{V: storedCellResultVersion + 1, Key: shard.String(), Cell: cr})
	if _, err := decodeStoredCellResult(cell, skewed); err == nil {
		t.Fatal("version skew accepted")
	}
	if _, err := decodeStoredCellResult(cell, []byte("{nope")); err == nil {
		t.Fatal("malformed payload accepted")
	}
}
