package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
)

// ---- SSE plumbing (coordinator streams, same wire format as workers) -----

type sseEvent struct {
	kind string
	data []byte
}

// openSSE attaches to a coordinator event stream; the channel closes when
// the server ends the stream.
func openSSE(t *testing.T, url string) (<-chan sseEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("events stream: status %d", resp.StatusCode)
	}
	ch := make(chan sseEvent, 1024)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.kind != "" {
					ch <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, "event: "):
				ev.kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = []byte(strings.TrimPrefix(line, "data: "))
			}
		}
	}()
	return ch, cancel
}

// fetchTraceSpans pulls the merged raw span list for one trace from the
// coordinator.
func fetchTraceSpans(t *testing.T, base, trace string) serve.TraceSpans {
	t.Helper()
	resp, err := http.Get(base + "/v1/trace/" + trace + "?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace export: status %d", resp.StatusCode)
	}
	var tsp serve.TraceSpans
	if err := json.NewDecoder(resp.Body).Decode(&tsp); err != nil {
		t.Fatal(err)
	}
	return tsp
}

// ---- tests ---------------------------------------------------------------

// TestClusterTracePropagation: one sweep through a coordinator and three
// workers (one straggler, so stealing fires) must land on a single trace:
// every span — coordinator scheduling, worker queueing, engine runs —
// carries the trace ID the sweep was accepted with, worker lease spans
// parent under the coordinator's lease spans, and the steal shows up as
// an instant event on the same timeline.
func TestClusterTracePropagation(t *testing.T) {
	tc := startCoordinator(t, testCoordOptions())
	tc.addWorker("slow", serve.Options{
		Workers:     1,
		SampleEvery: -1,
		BeforeCell:  func() { time.Sleep(150 * time.Millisecond) },
	})
	tc.addWorker("fast0", serve.Options{Workers: 2})
	tc.addWorker("fast1", serve.Options{Workers: 2})
	tc.waitLive(3)

	apps, algs, procs := loadgen.ClusterDims()
	cl := tc.client()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	acc, err := cl.Sweep(&serve.SweepRequest{
		Params: &params, Apps: apps, Algorithms: algs, Procs: procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Trace == "" {
		t.Fatal("sweep accepted without a trace ID")
	}
	st, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != serve.StatusDone {
		t.Fatalf("sweep ended %s: %s", st.Status, st.Error)
	}
	if tc.coord.Metrics().Snapshot()["coordinator_steals_total"] == 0 {
		t.Fatal("no cells were stolen from the straggler; the scenario did not exercise stealing")
	}

	tsp := fetchTraceSpans(t, tc.ts.URL, acc.Trace)
	services := map[string]bool{}
	coordLeaseSpans := map[string]bool{} // span ID -> is a coordinator lease span
	var workerLease, engineRuns, steals int
	for _, sp := range tsp.Spans {
		if sp.Trace != acc.Trace {
			t.Fatalf("span %s/%q carries trace %q, want %q", sp.Service, sp.Name, sp.Trace, acc.Trace)
		}
		services[sp.Service] = true
		switch {
		case sp.Service == coordService && strings.HasPrefix(sp.Name, "lease "):
			coordLeaseSpans[sp.ID] = true
		case sp.Service == coordService && sp.Name == "steal":
			steals++
		case sp.Service != coordService && strings.HasPrefix(sp.Name, "lease "):
			workerLease++
		case strings.HasPrefix(sp.Name, "engine "):
			engineRuns++
		}
	}
	if !services[coordService] {
		t.Error("no coordinator spans in the merged trace")
	}
	workerCount := 0
	for _, id := range []string{"slow", "fast0", "fast1"} {
		if services[id] {
			workerCount++
		}
	}
	if workerCount < 2 {
		t.Errorf("merged trace covers %d workers, want >= 2 (services: %v)", workerCount, services)
	}
	if steals == 0 {
		t.Error("stealing fired but recorded no steal span")
	}
	if engineRuns == 0 {
		t.Error("no engine spans from any worker in the merged trace")
	}
	// Cross-tier parenting: at least one worker lease span must cite a
	// coordinator lease span as its parent — the header actually rode the
	// lease grant.
	linked := 0
	for _, sp := range tsp.Spans {
		if sp.Service != coordService && strings.HasPrefix(sp.Name, "lease ") && coordLeaseSpans[sp.Parent] {
			linked++
		}
	}
	if workerLease == 0 || linked == 0 {
		t.Errorf("%d worker lease spans, %d parented under coordinator lease spans — trace context did not propagate", workerLease, linked)
	}
}

// TestClusterTraceChaos is the acceptance scenario: a 4-worker sweep, one
// worker killed mid-flight. The coordinator's SSE stream must deliver the
// terminal state without any status polling, and GET /v1/trace must still
// render a single Perfetto-loadable timeline covering the coordinator and
// every surviving worker — the dead worker's spans are simply absent.
func TestClusterTraceChaos(t *testing.T) {
	tc := startCoordinator(t, testCoordOptions())
	// w0 is a single-slot straggler so it reliably holds leased cells
	// when the kill lands.
	tc.addWorker("w0", serve.Options{
		Workers:     1,
		SampleEvery: -1,
		BeforeCell:  func() { time.Sleep(100 * time.Millisecond) },
	})
	for _, id := range []string{"w1", "w2", "w3"} {
		tc.addWorker(id, serve.Options{Workers: 1})
	}
	tc.waitLive(4)

	apps, algs, procs := loadgen.ClusterDims()
	cl := tc.client()
	params := serve.Params{Scale: testScale, Seed: testSeed}
	acc, err := cl.Sweep(&serve.SweepRequest{
		Params: &params, Apps: apps, Algorithms: algs, Procs: procs,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The stream itself is the progress signal: kill w0 once the first
	// cell completion arrives, then keep reading until the terminal job
	// event. GET /v1/jobs/{id} is never called.
	events, cancel := openSSE(t, tc.ts.URL+"/v1/jobs/"+acc.Job+"/events")
	defer cancel()
	var terminal *serve.JobEvent
	killed := false
	for ev := range events {
		switch ev.kind {
		case "cell":
			if !killed {
				tc.workers[0].kill()
				killed = true
			}
		case "job":
			var je serve.JobEvent
			if err := json.Unmarshal(ev.data, &je); err != nil {
				t.Fatal(err)
			}
			if serve.TerminalStatus(je.Status) {
				je := je
				terminal = &je
			}
		}
	}
	if !killed {
		t.Fatal("stream delivered no cell events; the kill never landed")
	}
	if terminal == nil {
		t.Fatal("stream closed without a terminal job event")
	}
	if terminal.Status != serve.StatusDone {
		t.Fatalf("sweep ended %s after worker kill: %s", terminal.Status, terminal.Error)
	}
	if terminal.Completed != acc.Cells {
		t.Errorf("terminal event reports %d/%d cells", terminal.Completed, acc.Cells)
	}

	// One Perfetto-loadable timeline: coordinator plus all three
	// survivors, every span event on the sweep's trace ID.
	resp, err := http.Get(tc.ts.URL + "/v1/trace/" + acc.Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perfetto export: status %d", resp.StatusCode)
	}
	var pf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pf); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if pf.OtherData["trace_id"] != acc.Trace {
		t.Errorf("perfetto trace_id %v, want %q", pf.OtherData["trace_id"], acc.Trace)
	}
	services := map[string]bool{}
	spanEvents := 0
	for _, ev := range pf.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			if name, ok := ev.Args["name"].(string); ok {
				services[name] = true
			}
		case ev.Ph == "X" || ev.Ph == "i":
			spanEvents++
			if tr, _ := ev.Args["trace"].(string); tr != acc.Trace {
				t.Fatalf("span event %q carries trace %v, want %q", ev.Name, ev.Args["trace"], acc.Trace)
			}
		}
	}
	if spanEvents == 0 {
		t.Fatal("perfetto export has no span events")
	}
	for _, svc := range []string{coordService, "w1", "w2", "w3"} {
		if !services[svc] {
			t.Errorf("merged timeline is missing surviving service %q (have %v)", svc, services)
		}
	}
}
