package cluster

import (
	"strings"
	"testing"
)

// FuzzDecodeClusterRequest drives the membership decoders with arbitrary
// bodies, mirroring serve's FuzzDecodeRequest invariant: any input either
// yields a request that passes its own Validate, with every identity
// field inside its documented bound, or a plain error — never a panic
// and never unbounded allocation (bodies cap at MaxRequestBytes, IDs at
// MaxWorkerID, URLs at MaxWorkerURL).
func FuzzDecodeClusterRequest(f *testing.F) {
	seeds := []string{
		// Valid registrations and heartbeats.
		`{"worker":"w0","url":"http://127.0.0.1:8080"}`,
		`{"worker":"rack1.node-03_a","url":"https://sim.example:9443"}`,
		`{"worker":"w0"}`,
		// Shapes the decoders must reject gracefully.
		``,
		`null`,
		`{}`,
		`[]`,
		`{"worker":"w0"`,
		`{"worker":"w0","url":"http://h"}{"trailing":true}`,
		`{"unknown_field":1}`,
		`{"worker":"has space","url":"http://h"}`,
		`{"worker":"w0","url":"ftp://h"}`,
		`{"worker":"w0","url":"/relative"}`,
		`{"worker":"w0","url":"http://"}`,
		`{"worker":"` + strings.Repeat("w", 4096) + `","url":"http://h"}`,
		`{"worker":"w0","url":"http://` + strings.Repeat("h", 4096) + `"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		if req, err := DecodeRegisterRequest(strings.NewReader(body)); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded registration fails its own Validate: %v", verr)
			}
			if len(req.Worker) > MaxWorkerID || len(req.URL) > MaxWorkerURL {
				t.Fatalf("validated registration exceeds bounds: worker=%d url=%d",
					len(req.Worker), len(req.URL))
			}
		}
		if req, err := DecodeHeartbeatRequest(strings.NewReader(body)); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("decoded heartbeat fails its own Validate: %v", verr)
			}
			if len(req.Worker) > MaxWorkerID {
				t.Fatalf("validated heartbeat exceeds bounds: worker=%d", len(req.Worker))
			}
		}
	})
}
