package cluster

import (
	"strings"

	"repro/internal/obs"
)

// coordMetrics is every coordinator /metrics series. Cluster-wide series
// are registered once at startup; per-worker series (queue depth, steals
// from, requeues after death) are registered at registration time with
// the sanitized worker ID baked into the name, so a scrape always shows
// one row per known worker.
type coordMetrics struct {
	set *obs.MetricSet

	workersLive    *obs.Metric
	workersTotal   *obs.Metric
	workerDeaths   *obs.Metric
	heartbeats     *obs.Metric
	jobsAccepted   *obs.Metric
	jobsCompleted  *obs.Metric
	jobsFailed     *obs.Metric
	jobsRetriable  *obs.Metric
	leasesGranted  *obs.Metric
	cellsTotal     *obs.Metric
	cellsCompleted *obs.Metric
	cellsFailed    *obs.Metric
	cellsStolen    *obs.Metric
	cellsRequeued  *obs.Metric
	cellsFromStore *obs.Metric
	pendingCells   *obs.Metric
	streamDropped  *obs.Metric

	storeHits        *obs.Metric
	storeMisses      *obs.Metric
	storePuts        *obs.Metric
	storeQuarantined *obs.Metric
	webhookPending   *obs.Metric
	webhookDelivered *obs.Metric
	webhookFailed    *obs.Metric

	reqLatency   *obs.Histogram
	leaseHarvest *obs.Histogram
}

func newCoordMetrics() *coordMetrics {
	s := obs.NewMetricSet()
	return &coordMetrics{
		set:            s,
		workersLive:    s.Gauge("coordinator_workers_live", "registered workers currently considered alive"),
		workersTotal:   s.Counter("coordinator_workers_registered_total", "worker registrations accepted (including re-registrations)"),
		workerDeaths:   s.Counter("coordinator_worker_deaths_total", "workers declared dead (heartbeat timeout or transport failure)"),
		heartbeats:     s.Counter("coordinator_heartbeats_total", "heartbeats received"),
		jobsAccepted:   s.Counter("coordinator_jobs_accepted_total", "sweep jobs accepted"),
		jobsCompleted:  s.Counter("coordinator_jobs_completed_total", "sweep jobs finished successfully"),
		jobsFailed:     s.Counter("coordinator_jobs_failed_total", "sweep jobs finished with an error"),
		jobsRetriable:  s.Counter("coordinator_jobs_retriable_total", "sweep jobs handed back retriable (drain or crash recovery)"),
		leasesGranted:  s.Counter("coordinator_leases_granted_total", "leases granted to workers"),
		cellsTotal:     s.Counter("coordinator_cells_total", "sweep cells accepted for execution"),
		cellsCompleted: s.Counter("coordinator_cells_completed_total", "sweep cells completed"),
		cellsFailed:    s.Counter("coordinator_cells_failed_total", "sweep cells that failed on a healthy worker"),
		cellsStolen:    s.Counter("coordinator_steals_total", "cells stolen from a straggler's lease for an idle worker"),
		cellsRequeued:  s.Counter("coordinator_requeues_total", "cells requeued after a worker death"),
		cellsFromStore: s.Counter("coordinator_cells_from_store_total", "sweep cells restored from the durable store without leasing"),
		pendingCells:   s.Gauge("coordinator_pending_cells", "cells accepted but not yet completed"),
		streamDropped:  s.Counter("coordinator_stream_dropped_events_total", "progress-stream events dropped on slow subscribers"),

		storeHits:        s.Counter("coordinator_store_hits_total", "durable result store hits"),
		storeMisses:      s.Counter("coordinator_store_misses_total", "durable result store misses"),
		storePuts:        s.Counter("coordinator_store_puts_total", "results written to the durable store"),
		storeQuarantined: s.Counter("coordinator_store_quarantined_total", "store segments quarantined for corruption"),
		webhookPending:   s.Gauge("coordinator_webhook_pending", "webhook deliveries awaiting a terminal outcome"),
		webhookDelivered: s.Counter("coordinator_webhook_delivered_total", "webhook deliveries acknowledged 2xx"),
		webhookFailed:    s.Counter("coordinator_webhook_failed_total", "webhook deliveries failed after exhausting attempts"),
		reqLatency:       s.Histogram("coordinator_request_latency_us", "request latency in microseconds (SSE streams excluded)"),
		leaseHarvest:     s.Histogram("coordinator_lease_harvest_us", "lease lifetime from grant to final harvest in microseconds"),
	}
}

// workerMetrics is the per-worker series bundle.
type workerMetrics struct {
	pending  *obs.Metric // cells currently leased to this worker
	steals   *obs.Metric // cells stolen from this worker's leases
	requeues *obs.Metric // cells requeued off this worker after a death
}

// metricName sanitizes a worker ID into the Prometheus name alphabet:
// the ID charset is [A-Za-z0-9._-], so '.' and '-' map to '_' and
// uppercase folds down.
func metricName(prefix, workerID string) string {
	var b strings.Builder
	b.WriteString(prefix)
	for i := 0; i < len(workerID); i++ {
		c := workerID[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// forWorker registers (or returns) the per-worker series for id.
func (m *coordMetrics) forWorker(id string) workerMetrics {
	return workerMetrics{
		pending:  m.set.Gauge(metricName("coordinator_worker_pending_cells_", id), "cells currently leased to this worker"),
		steals:   m.set.Counter(metricName("coordinator_worker_steals_total_", id), "cells stolen from this worker's leases"),
		requeues: m.set.Counter(metricName("coordinator_worker_requeues_total_", id), "cells requeued off this worker after it was declared dead"),
	}
}
