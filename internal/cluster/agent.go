package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Agent is the worker-side membership loop: it registers an mtserve
// instance with a coordinator and heartbeats until stopped. It is
// deliberately dumb — all scheduling intelligence lives on the
// coordinator; the agent only keeps the worker's liveness fresh and
// re-registers when the coordinator has forgotten it (a coordinator
// restart answers heartbeats with 404).
type Agent struct {
	coordURL string
	workerID string
	selfURL  string
	interval time.Duration
	log      *slog.Logger

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartAgent registers worker `id`, advertised at selfURL, with the
// coordinator at coordURL and heartbeats every interval (default 500ms).
// Registration failures are retried forever — a worker that outlives a
// coordinator restart rejoins by itself.
func StartAgent(coordURL, id, selfURL string, interval time.Duration, log *slog.Logger) *Agent {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	a := &Agent{
		coordURL: coordURL,
		workerID: id,
		selfURL:  selfURL,
		interval: interval,
		log:      log,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go a.loop()
	return a
}

// Stop terminates the membership loop; extra calls are no-ops. The
// coordinator notices the silence via its heartbeat timeout; there is no
// explicit deregister (a crash would not send one either, so the timeout
// path must work anyway).
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

func (a *Agent) loop() {
	defer close(a.done)
	registered := false
	for {
		var err error
		if !registered {
			if err = a.register(); err == nil {
				registered = true
			}
		} else if err = a.heartbeat(); err != nil {
			// Any failure demotes to re-registration: a 404 means a
			// restarted coordinator, a transport error means we cannot
			// know what the coordinator still remembers.
			registered = false
		}
		if err != nil && a.log != nil {
			a.log.Warn("cluster agent", "worker", a.workerID, "err", err.Error())
		}
		select {
		case <-a.stop:
			return
		case <-time.After(a.interval):
		}
	}
}

func (a *Agent) register() error {
	return a.post("/cluster/v1/register", RegisterRequest{Worker: a.workerID, URL: a.selfURL})
}

func (a *Agent) heartbeat() error {
	return a.post("/cluster/v1/heartbeat", HeartbeatRequest{Worker: a.workerID})
}

func (a *Agent) post(path string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(a.coordURL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}
