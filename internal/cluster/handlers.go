package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/workload"
)

// Handler returns the coordinator's HTTP API. The public surface is
// mtserve's, endpoint for endpoint — a client pointed at a coordinator
// cannot tell the difference except for Role in /healthz — plus the
// cluster-internal registration endpoints under /cluster/v1.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", c.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/advise", c.handleAdvise)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJobEvents)
	mux.HandleFunc("GET /v1/trace/{id}", c.handleTrace)
	mux.HandleFunc("GET /v1/placements", c.handlePlacements)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	return c.instrument(mux)
}

// instrument feeds the request-latency histogram around the mux. SSE
// streams are excluded — their duration is the client's watch time, not
// a request latency.
func (c *Coordinator) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		if !strings.HasSuffix(r.URL.Path, "/events") {
			c.metrics.reqLatency.ObserveSince(start)
		}
	})
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a serve.ErrorResponse (same wire shape as a worker).
func writeError(w http.ResponseWriter, status int, msg string, retriable bool) {
	writeJSON(w, status, serve.ErrorResponse{Error: msg, Retriable: retriable})
}

// handleSweep accepts a sweep for distributed execution.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes)
	req, err := serve.DecodeSweepRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	st, existing, err := c.SubmitSweepTraced(req, c.traceFromRequest(r))
	if err != nil {
		// Both refusal modes — draining and an empty cluster — are
		// retriable: the identical sweep succeeds once workers are back.
		writeError(w, http.StatusServiceUnavailable, err.Error(), true)
		return
	}
	writeJSON(w, http.StatusAccepted, serve.SweepAccepted{
		Job:      st.Job,
		Status:   st.Status,
		Cells:    st.Cells,
		Existing: existing,
		Trace:    st.Trace,
	})
}

// handleJob reports a job's status, results attached once done.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id, false)
		return
	}
	if st.Status == serve.StatusRetriable {
		// Same contract as a drained worker: 503 with the status body tells
		// the poller to resubmit the identical content-addressed sweep.
		writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSimulate proxies a single cell to the rendezvous-preferred worker
// (so repeated identical cells hit that worker's result cache), failing
// over down the preference order when workers are dead.
func (c *Coordinator) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if c.Draining() {
		writeError(w, http.StatusServiceUnavailable, errDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes)
	req, err := serve.DecodeSimulateRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}

	// Request-level cell identity, mirroring the sweep shard key.
	alg := req.Algorithm
	if req.Placement != nil {
		alg = req.Placement.Algorithm
	}
	procs := req.Procs
	if req.Config != nil && req.Config.Processors > 0 {
		procs = req.Config.Processors
	}
	params := resolveParams(req.Params)
	engine := normalizeEngine(req.Engine)
	key := CellShardKey(params, req.App, alg, procs, req.Infinite, engine)

	now := time.Now()
	live := c.liveWorkerIDs(now)
	if len(live) == 0 {
		writeError(w, http.StatusServiceUnavailable, errNoWorkers.Error(), true)
		return
	}
	sort.Slice(live, func(i, k int) bool {
		si, sk := rendezvousScore(key, live[i]), rendezvousScore(key, live[k])
		if si != sk {
			return si > sk
		}
		return live[i] < live[k]
	})
	// Wrap the proxied call in a coordinator span so the worker's spans
	// (propagated via the forwarded header) nest under it.
	var proxySpan *obs.ActiveSpan
	trace := ""
	if c.spans != nil {
		proxySpan = c.spans.Start(c.traceFromRequest(r), coordService, "proxy simulate")
		defer proxySpan.End()
		trace = proxySpan.Context().HeaderValue()
		w.Header().Set(obs.TraceHeader, trace)
	}
	for _, wid := range live {
		wk := c.workerByID(wid)
		if wk == nil {
			continue
		}
		resp, err := wk.client().SimulateTrace(req, trace)
		if err == nil {
			proxySpan.SetNote("worker " + wid)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		var ae *client.APIError
		if errors.As(err, &ae) {
			// The worker answered; mirror its verdict to the caller.
			writeError(w, ae.Status, ae.Message, ae.Retriable)
			return
		}
		c.markDead(wk, err)
	}
	writeError(w, http.StatusServiceUnavailable, "every candidate worker failed", true)
}

// handleAdvise proxies an advisor request to the rendezvous-preferred
// worker — keyed by the request's sharing source, so repeated advice on
// the same catalog app lands on the worker whose suite already memoized
// that app's measurement — failing over like handleSimulate.
func (c *Coordinator) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if c.Draining() {
		writeError(w, http.StatusServiceUnavailable, errDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes)
	req, err := serve.DecodeAdviseRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}

	params := resolveParams(req.Params)
	key := CellShardKey(params, req.App, "ADVISE", req.Procs, false, normalizeEngine(req.Engine))

	now := time.Now()
	live := c.liveWorkerIDs(now)
	if len(live) == 0 {
		writeError(w, http.StatusServiceUnavailable, errNoWorkers.Error(), true)
		return
	}
	sort.Slice(live, func(i, k int) bool {
		si, sk := rendezvousScore(key, live[i]), rendezvousScore(key, live[k])
		if si != sk {
			return si > sk
		}
		return live[i] < live[k]
	})
	var proxySpan *obs.ActiveSpan
	trace := ""
	if c.spans != nil {
		proxySpan = c.spans.Start(c.traceFromRequest(r), coordService, "proxy advise")
		defer proxySpan.End()
		trace = proxySpan.Context().HeaderValue()
		w.Header().Set(obs.TraceHeader, trace)
	}
	for _, wid := range live {
		wk := c.workerByID(wid)
		if wk == nil {
			continue
		}
		resp, err := wk.client().AdviseTrace(req, trace)
		if err == nil {
			proxySpan.SetNote("worker " + wid)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		var ae *client.APIError
		if errors.As(err, &ae) {
			writeError(w, ae.Status, ae.Message, ae.Retriable)
			return
		}
		c.markDead(wk, err)
	}
	writeError(w, http.StatusServiceUnavailable, "every candidate worker failed", true)
}

// handlePlacements returns the simulatable catalog (identical on every
// node — the catalog is compiled in, not configured).
func (c *Coordinator) handlePlacements(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serve.PlacementsResponse{
		Apps:       workload.Names(),
		Algorithms: placement.Names(),
		Engines:    serve.Engines(),
	})
}

// handleHealth reports coordinator liveness; draining answers 503.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := c.Health()
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Health builds the coordinator's health view in mtserve's wire shape:
// Workers is live cluster members, QueueDepth is cells awaiting
// completion, and the jobs block balances exactly like a worker's.
func (c *Coordinator) Health() serve.HealthResponse {
	h := serve.HealthResponse{
		Status:     "ok",
		Role:       "coordinator",
		Workers:    len(c.liveWorkerIDs(time.Now())),
		QueueDepth: int(c.metrics.pendingCells.Value()),
		Jobs: serve.JobsHealth{
			Accepted:  c.metrics.jobsAccepted.Value(),
			Completed: c.metrics.jobsCompleted.Value(),
			Failed:    c.metrics.jobsFailed.Value(),
			Retriable: c.metrics.jobsRetriable.Value(),
		},
	}
	if c.opts.Store != nil {
		ss := c.opts.Store.Stats()
		h.Store = &serve.StoreHealth{
			Entries:        ss.Entries,
			SealedSegments: ss.SealedSegments,
			Hits:           ss.Hits,
			Misses:         ss.Misses,
			Puts:           ss.Puts,
			Quarantined:    ss.Quarantined,
			HitRate:        ss.HitRate(),
		}
	}
	if c.opts.Webhooks != nil {
		ws := c.opts.Webhooks.Stats()
		h.Webhooks = &serve.WebhookHealth{
			Pending:   ws.Pending,
			Delivered: ws.Delivered,
			Failed:    ws.Failed,
			Retries:   ws.Retries,
		}
	}
	if c.Draining() {
		h.Status = "draining"
	}
	return h
}

// handleMetrics renders the Prometheus text exposition.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.syncDurableCounters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = c.metrics.set.WriteTo(w)
}

// handleRegister adds or refreshes a worker.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if c.Draining() {
		writeError(w, http.StatusServiceUnavailable, errDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeRegisterRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	live, err := c.register(req.Worker, req.URL, time.Now())
	if err != nil {
		writeError(w, http.StatusTooManyRequests, err.Error(), false)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{Worker: req.Worker, Workers: live})
}

// handleHeartbeat refreshes a worker's liveness. Unknown workers get 404
// so their agent re-registers (this is how workers rejoin a restarted
// coordinator).
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeHeartbeatRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	if err := c.heartbeat(req.Worker, time.Now()); err != nil {
		writeError(w, http.StatusNotFound, err.Error(), false)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Worker: req.Worker})
}
