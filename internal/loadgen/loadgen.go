// Package loadgen is the shared core of the self-benchmarks: the cell
// mix, library ground truth, concurrent driving, latency aggregation and
// report writing that `mtserve -loadgen` (single-server service bench)
// and `mtcoord -bench` (cluster scaling bench) have in common. Both
// benchmarks share one hard rule — the service layer adds transport,
// never arithmetic — so both verify every response against the same
// direct library results this package computes.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cell is one named benchmark cell.
type Cell struct {
	App   string
	Alg   string
	Procs int
}

// Mix builds the apps x algorithms x procs cross product in deterministic
// order (the same order a sweep's results come back in).
func Mix(apps, algs []string, procs []int) []Cell {
	var cells []Cell
	for _, app := range apps {
		for _, alg := range algs {
			for _, p := range procs {
				cells = append(cells, Cell{App: app, Alg: alg, Procs: p})
			}
		}
	}
	return cells
}

// DefaultDims returns the standard benchmark dimensions: two
// applications across every static placement algorithm at two machine
// sizes. The sweep-shaped benchmarks submit these dimensions directly;
// DefaultMix is their cross product.
func DefaultDims() (apps, algs []string, procs []int) {
	return []string{"MP3D", "Gauss"}, core.AllAlgorithms(), []int{2, 4}
}

// DefaultMix is the standard benchmark mix — enough distinct cells that
// a first pass is miss-heavy and later passes are cache-served.
func DefaultMix() []Cell {
	apps, algs, procs := DefaultDims()
	return Mix(apps, algs, procs)
}

// ClusterDims returns the cluster-benchmark dimensions: many
// applications but only the two cheap placement algorithms (LOAD-BAL and
// RANDOM — no sharing-matrix candidate ranking). The cluster bench
// models full-scale cells with a per-cell service-time floor; keeping
// the real marginal CPU per cell small is what makes the floor dominate,
// so measured scaling reflects the coordinator's pipeline rather than
// one CI core serializing placement search.
func ClusterDims() (apps, algs []string, procs []int) {
	return []string{"MP3D", "Gauss", "Water", "FFT", "Cholesky", "Barnes-Hut"},
		[]string{"LOAD-BAL", "RANDOM"},
		[]int{2, 4}
}

// ClusterMix is the ClusterDims cross product (24 cells).
func ClusterMix() []Cell {
	apps, algs, procs := ClusterDims()
	return Mix(apps, algs, procs)
}

// Apps lists the distinct applications of a mix, in first-seen order.
func Apps(cells []Cell) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cells {
		if !seen[c.App] {
			seen[c.App] = true
			out = append(out, c.App)
		}
	}
	return out
}

// GroundTruth computes every cell directly through the library, sharing
// one suite, so each benchmarked response has an exact expected value.
func GroundTruth(scale float64, seed int64, cells []Cell) (map[Cell]*sim.Result, error) {
	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: scale, Seed: seed}
	suite := core.NewSuite(opts)
	want := make(map[Cell]*sim.Result, len(cells))
	for _, c := range cells {
		res, err := suite.RunOne(c.App, c.Alg, c.Procs, false)
		if err != nil {
			return nil, fmt.Errorf("ground truth %s/%s/%d: %w", c.App, c.Alg, c.Procs, err)
		}
		want[c] = res
	}
	return want, nil
}

// Concurrent runs fn(0..n-1) on n goroutines released by a common
// barrier — so the clients are genuinely concurrent, not staggered by
// goroutine startup — and returns the elapsed wall-clock.
func Concurrent(n int, fn func(client int)) time.Duration {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			fn(i)
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

// InFlight tracks a concurrency high-water mark.
type InFlight struct {
	mu       sync.Mutex
	cur, max int
}

// Enter marks one request in flight.
func (f *InFlight) Enter() {
	f.mu.Lock()
	f.cur++
	if f.cur > f.max {
		f.max = f.cur
	}
	f.mu.Unlock()
}

// Leave marks one request done.
func (f *InFlight) Leave() {
	f.mu.Lock()
	f.cur--
	f.mu.Unlock()
}

// Max returns the high-water mark.
func (f *InFlight) Max() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.max
}

// Latencies aggregates request latencies across clients.
type Latencies struct {
	mu  sync.Mutex
	all []time.Duration
}

// Add records one latency sample.
func (l *Latencies) Add(d time.Duration) {
	l.mu.Lock()
	l.all = append(l.all, d)
	l.mu.Unlock()
}

// Count returns the number of samples.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.all)
}

// PercentileMs returns the p-quantile (0..1) in milliseconds, 0 when
// empty. Nearest-rank on the sorted samples, matching the historical
// loadgen report definition.
func (l *Latencies) PercentileMs(p float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.all) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// WriteReport marshals rep with indentation, writes it to path when path
// is non-empty, and echoes it to w (typically stdout).
func WriteReport(w io.Writer, path string, rep any) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path != "" {
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
	}
	_, err = w.Write(out)
	return err
}
