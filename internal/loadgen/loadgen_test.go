package loadgen

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestMixOrderDeterministic: Mix must enumerate apps x algs x procs in
// exactly the nested order a sweep's results come back in — the
// benchmarks index ground truth by cell, so order is part of the
// contract.
func TestMixOrderDeterministic(t *testing.T) {
	got := Mix([]string{"A", "B"}, []string{"x", "y"}, []int{1, 2})
	want := []Cell{
		{"A", "x", 1}, {"A", "x", 2}, {"A", "y", 1}, {"A", "y", 2},
		{"B", "x", 1}, {"B", "x", 2}, {"B", "y", 1}, {"B", "y", 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Mix order changed:\n  got  %v\n  want %v", got, want)
	}
}

// TestDefaultAndClusterMixes: the two standard mixes stay well-formed —
// every algorithm real, every app distinct, sizes as documented.
func TestDefaultAndClusterMixes(t *testing.T) {
	if got, want := len(DefaultMix()), 2*len(core.AllAlgorithms())*2; got != want {
		t.Errorf("DefaultMix has %d cells, want %d", got, want)
	}
	if got := len(ClusterMix()); got != 24 {
		t.Errorf("ClusterMix has %d cells, want 24", got)
	}
	// The cluster mix exists to keep per-cell CPU flat: only the two
	// placement algorithms with no candidate ranking are allowed in it.
	for _, c := range ClusterMix() {
		if c.Alg != "LOAD-BAL" && c.Alg != "RANDOM" {
			t.Errorf("ClusterMix contains ranking algorithm %s", c.Alg)
		}
	}
	apps := Apps(ClusterMix())
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a] {
			t.Errorf("Apps returned %s twice", a)
		}
		seen[a] = true
	}
	if apps[0] != "MP3D" {
		t.Errorf("Apps order not first-seen: got %v", apps)
	}
}

// TestGroundTruthDeterministic: two independent GroundTruth calls agree
// bit for bit — this is the root of every differential assertion the
// benchmarks make, so it has to hold before anything else means much.
func TestGroundTruthDeterministic(t *testing.T) {
	cells := Mix([]string{"MP3D"}, []string{"LOAD-BAL", "RANDOM"}, []int{2})
	a, err := GroundTruth(0.1, 7, cells)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GroundTruth(0.1, 7, cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if a[c] == nil {
			t.Fatalf("no result for %v", c)
		}
		if !reflect.DeepEqual(a[c], b[c]) {
			t.Errorf("cell %v not deterministic across runs", c)
		}
	}
}

// TestConcurrentBarrier: all n clients observe the barrier — none runs
// before release, all run exactly once, and InFlight sees real overlap.
func TestConcurrentBarrier(t *testing.T) {
	const n = 8
	var (
		mu    sync.Mutex
		calls = map[int]int{}
		fl    InFlight
	)
	block := make(chan struct{})
	var once sync.Once
	Concurrent(n, func(client int) {
		fl.Enter()
		defer fl.Leave()
		mu.Lock()
		calls[client]++
		ready := len(calls) == n
		mu.Unlock()
		if ready {
			once.Do(func() { close(block) })
		}
		// Hold until every client has entered, forcing full overlap.
		<-block
	})
	if len(calls) != n {
		t.Fatalf("%d distinct clients ran, want %d", len(calls), n)
	}
	for id, c := range calls {
		if c != 1 {
			t.Errorf("client %d ran %d times", id, c)
		}
	}
	if fl.Max() != n {
		t.Errorf("in-flight high water %d, want %d", fl.Max(), n)
	}
}

// TestLatenciesPercentiles pins the nearest-rank definition the reports
// have always used.
func TestLatenciesPercentiles(t *testing.T) {
	var l Latencies
	if l.PercentileMs(0.5) != 0 {
		t.Error("empty Latencies must report 0")
	}
	// 1..10 ms, added out of order: percentile must sort internally.
	for _, ms := range []int{7, 1, 10, 3, 9, 2, 8, 4, 6, 5} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if l.Count() != 10 {
		t.Fatalf("count %d, want 10", l.Count())
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.5, 5}, {0.9, 9}, {0.99, 9}, {1, 10},
	}
	for _, c := range cases {
		if got := l.PercentileMs(c.p); got != c.want {
			t.Errorf("p%.2f = %gms, want %gms", c.p, got, c.want)
		}
	}
}

// TestWriteReport: the report lands both on disk and on the echo writer,
// as indented JSON round-trippable to the same values.
func TestWriteReport(t *testing.T) {
	type rep struct {
		Cells   int     `json:"cells"`
		Speedup float64 `json:"speedup"`
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var echo bytes.Buffer
	if err := WriteReport(&echo, path, rep{Cells: 24, Speedup: 3.4}); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, echo.Bytes()) {
		t.Error("file and echoed report differ")
	}
	var back rep
	if err := json.Unmarshal(onDisk, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cells != 24 || back.Speedup != 3.4 {
		t.Errorf("round-trip %+v", back)
	}
	// Empty path: echo only, no file write.
	echo.Reset()
	if err := WriteReport(&echo, "", rep{Cells: 1}); err != nil {
		t.Fatal(err)
	}
	if echo.Len() == 0 {
		t.Error("nothing echoed with empty path")
	}
}
