package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Title",
		Note:    "note",
		Columns: []string{"App", "Value"},
	}
	tb.AddRow("LocusRoute", "12.5")
	tb.AddRow("FFT", "3")
	out := tb.String()
	for _, want := range []string{"Title", "note", "App", "LocusRoute", "12.5", "FFT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, note, header, rule, 2 rows
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	// Columns align: "Value" header and "12.5" end at the same offset.
	var headerEnd, rowEnd int
	for _, l := range lines {
		if strings.Contains(l, "Value") {
			headerEnd = len(l)
		}
		if strings.Contains(l, "12.5") {
			rowEnd = len(l)
		}
	}
	if headerEnd != rowEnd {
		t.Errorf("columns misaligned: header ends %d, row ends %d", headerEnd, rowEnd)
	}
}

func TestTableShortRows(t *testing.T) {
	tb := &Table{Columns: []string{"A", "B", "C"}}
	tb.AddRow("x")
	if out := tb.String(); !strings.Contains(out, "x") {
		t.Errorf("short row dropped: %s", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(10, 10, 20); len(got) != 20 {
		t.Errorf("full bar length = %d, want 20", len(got))
	}
	if got := Bar(5, 10, 20); len(got) != 10 {
		t.Errorf("half bar length = %d, want 10", len(got))
	}
	if got := Bar(0.0001, 10, 20); len(got) != 1 {
		t.Errorf("tiny bar length = %d, want 1 (visible)", len(got))
	}
	if got := Bar(100, 10, 20); len(got) != 20 {
		t.Errorf("overflow bar clamped to %d, want 20", len(got))
	}
	if Bar(0, 10, 20) != "" || Bar(5, 0, 20) != "" {
		t.Error("degenerate bars must be empty")
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title: "Figure 2",
		Groups: []BarGroup{
			{Label: "2 processors", Bars: []BarItem{
				{Label: "RANDOM", Value: 1.0},
				{Label: "LOAD-BAL", Value: 0.8},
			}},
			{Label: "4 processors", Bars: []BarItem{
				{Label: "RANDOM", Value: 1.0},
			}},
		},
	}
	out := c.String()
	for _, want := range []string{"Figure 2", "2 processors", "4 processors", "RANDOM", "LOAD-BAL", "0.800", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// LOAD-BAL bar must be shorter than RANDOM's.
	var randomBar, lbBar int
	for _, l := range strings.Split(out, "\n") {
		n := strings.Count(l, "#")
		if strings.Contains(l, "RANDOM") && randomBar == 0 {
			randomBar = n
		}
		if strings.Contains(l, "LOAD-BAL") {
			lbBar = n
		}
	}
	if lbBar >= randomBar {
		t.Errorf("LOAD-BAL bar (%d) not shorter than RANDOM (%d)", lbBar, randomBar)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Error("F wrong")
	}
	if K(12345) != "12.3" {
		t.Error("K wrong")
	}
	if Pct(0.123, 1) != "12.3%" {
		t.Error("Pct wrong")
	}
}
