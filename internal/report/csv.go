package report

import (
	"encoding/csv"
	"io"
)

// WriteCSV writes the table's header and rows as RFC 4180 CSV (title and
// note are not included; CSV consumers want pure data).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		// Pad short rows so every record has the header's width.
		rec := make([]string, len(t.Columns))
		copy(rec, row)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVOf renders any chart-like data as a table first. BarChart's CSV is
// one record per bar: group, label, value.
func (c *BarChart) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "label", "value"}); err != nil {
		return err
	}
	for _, g := range c.Groups {
		for _, b := range g.Bars {
			if err := cw.Write([]string{g.Label, b.Label, F(b.Value, 6)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
