package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// TimeSeries is a set of aligned series sampled on a fixed step — the
// report-layer form of the simulator's interval sampler output. It
// renders as CSV (one record per step) and as an SVG column of
// sparklines (one row per series, min/max/last annotated).
type TimeSeries struct {
	// Title is printed above the sparklines.
	Title string
	// Start is the first sample's time; Step the distance between
	// samples (simulated cycles).
	Start, Step uint64
	// Series are the aligned series; all should have equal length (short
	// ones render/export as missing values).
	Series []Series
}

// Series is one named sequence of samples.
type Series struct {
	Name   string
	Points []float64
}

// Len returns the longest series length.
func (ts *TimeSeries) Len() int {
	n := 0
	for _, s := range ts.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	return n
}

// WriteCSV writes one record per step: the window start time followed by
// every series' value at that step.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(ts.Series)+1)
	header = append(header, "start")
	for _, s := range ts.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := ts.Len()
	rec := make([]string, len(header))
	for i := 0; i < n; i++ {
		rec[0] = fmt.Sprint(ts.Start + uint64(i)*ts.Step)
		for j, s := range ts.Series {
			if i < len(s.Points) {
				rec[j+1] = F(s.Points[i], 6)
			} else {
				rec[j+1] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline SVG layout constants.
const (
	sparkRowHeight   = 44
	sparkRowGap      = 10
	sparkLabelWidth  = 180
	sparkPlotWidth   = 560
	sparkValueWidth  = 96
	sparkMarginTop   = 34
	sparkMarginLeft  = 16
	sparkMarginRight = 16
	sparkMarginBot   = 12
)

// WriteSVG renders the series as a stacked column of sparklines: each row
// a polyline scaled to its own [min, max], annotated with the series name
// on the left and min/max/last values on the right.
func (ts *TimeSeries) WriteSVG(w io.Writer) error {
	height := sparkMarginTop + sparkMarginBot +
		len(ts.Series)*(sparkRowHeight+sparkRowGap)
	width := sparkMarginLeft + sparkLabelWidth + sparkPlotWidth + sparkValueWidth + sparkMarginRight

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<style>text{font-family:sans-serif;font-size:11px;fill:#222}.title{font-size:14px;font-weight:bold}.val{font-size:10px;fill:#666}</style>` + "\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" class="title">%s</text>`+"\n", sparkMarginLeft, svgEscape(ts.Title))

	y := sparkMarginTop
	for i, s := range ts.Series {
		color := svgPalette[i%len(svgPalette)]
		min, max := 0.0, 0.0
		for j, v := range s.Points {
			if j == 0 || v < min {
				min = v
			}
			if j == 0 || v > max {
				max = v
			}
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			sparkMarginLeft, y+sparkRowHeight/2+4, svgEscape(s.Name))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f7f7f7"/>`+"\n",
			sparkMarginLeft+sparkLabelWidth, y, sparkPlotWidth, sparkRowHeight)
		if n := len(s.Points); n > 0 {
			span := max - min
			if span <= 0 {
				span = 1
			}
			var pts strings.Builder
			for j, v := range s.Points {
				x := float64(sparkMarginLeft + sparkLabelWidth)
				if n > 1 {
					x += float64(j) / float64(n-1) * float64(sparkPlotWidth)
				}
				py := float64(y+sparkRowHeight-3) - (v-min)/span*float64(sparkRowHeight-6)
				if j > 0 {
					pts.WriteByte(' ')
				}
				fmt.Fprintf(&pts, "%.1f,%.1f", x, py)
			}
			if n == 1 {
				fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="2" fill="%s"/>`+"\n",
					sparkMarginLeft+sparkLabelWidth, y+sparkRowHeight/2, color)
			} else {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
					color, pts.String())
			}
			fmt.Fprintf(&b, `<text x="%d" y="%d" class="val">min %s  max %s  last %s</text>`+"\n",
				sparkMarginLeft+sparkLabelWidth+sparkPlotWidth+6, y+sparkRowHeight/2+4,
				F(min, 3), F(max, 3), F(s.Points[n-1], 3))
		}
		y += sparkRowHeight + sparkRowGap
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
