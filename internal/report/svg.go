package report

import (
	"fmt"
	"io"
	"strings"
)

// SVG rendering of grouped bar charts — standalone figure files for the
// regenerated paper figures, produced with the standard library only.

const (
	svgBarHeight   = 14
	svgBarGap      = 4
	svgGroupGap    = 26
	svgLabelWidth  = 150
	svgValueWidth  = 64
	svgPlotWidth   = 440
	svgMarginTop   = 46
	svgMarginLeft  = 16
	svgMarginRight = 16
	svgMarginBot   = 16
)

// svgPalette colors bars by their within-group index, cycling.
var svgPalette = []string{
	"#4878a8", "#9470b4", "#58a066", "#c4803c", "#b05454",
	"#58949c", "#8a8a44", "#6868b8", "#a05c84", "#7c7c7c",
}

// WriteSVG renders the chart as a standalone SVG document.
func (c *BarChart) WriteSVG(w io.Writer) error {
	var max float64
	bars := 0
	for _, g := range c.Groups {
		for _, b := range g.Bars {
			if b.Value > max {
				max = b.Value
			}
			bars++
		}
	}
	if max <= 0 {
		max = 1
	}
	height := svgMarginTop + svgMarginBot +
		bars*(svgBarHeight+svgBarGap) + len(c.Groups)*svgGroupGap
	width := svgMarginLeft + svgLabelWidth + svgPlotWidth + svgValueWidth + svgMarginRight

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<style>text{font-family:sans-serif;font-size:11px;fill:#222}.title{font-size:14px;font-weight:bold}.note{font-size:10px;fill:#666}.group{font-weight:bold}</style>` + "\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" class="title">%s</text>`+"\n", svgMarginLeft, svgEscape(c.Title))
	if c.Note != "" {
		fmt.Fprintf(&b, `<text x="%d" y="34" class="note">%s</text>`+"\n", svgMarginLeft, svgEscape(c.Note))
	}

	y := svgMarginTop
	for _, g := range c.Groups {
		y += svgGroupGap - 8
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="group">%s</text>`+"\n", svgMarginLeft, y, svgEscape(g.Label))
		y += 8
		for i, bar := range g.Bars {
			barW := int(bar.Value / max * float64(svgPlotWidth))
			if barW < 1 && bar.Value > 0 {
				barW = 1
			}
			color := svgPalette[i%len(svgPalette)]
			fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
				svgMarginLeft, y+svgBarHeight-3, svgEscape(bar.Label))
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				svgMarginLeft+svgLabelWidth, y, barW, svgBarHeight, color)
			fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
				svgMarginLeft+svgLabelWidth+barW+6, y+svgBarHeight-3, F(bar.Value, 3))
			y += svgBarHeight + svgBarGap
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// svgEscape escapes the XML special characters in text content.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
