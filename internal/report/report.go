// Package report renders experiment results as aligned text tables and
// ASCII bar charts, the library's equivalent of the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	// Title is printed above the table.
	Title string
	// Note, if non-empty, is printed under the title.
	Note string
	// Columns are the header cells.
	Columns []string
	// Rows hold the body cells; short rows are padded with empty cells.
	Rows [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				// left-align the first column
				fmt.Fprintf(&b, "%-*s", width, c)
			} else {
				fmt.Fprintf(&b, "%*s", width, c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Bar renders a horizontal bar of the given value: `scale` is the value
// that maps to full width.
func Bar(value, scale float64, width int) string {
	if scale <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(value / scale * float64(width))
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// BarChart is a grouped bar chart: for each group (e.g. a processor
// configuration), one labeled bar per series (e.g. a placement algorithm).
type BarChart struct {
	// Title is printed above the chart.
	Title string
	// Note, if non-empty, is printed under the title.
	Note string
	// Groups in display order.
	Groups []BarGroup
	// Width is the full bar width in characters (default 40).
	Width int
}

// BarGroup is one cluster of bars.
type BarGroup struct {
	// Label heads the group, e.g. "4 processors".
	Label string
	// Bars in display order.
	Bars []BarItem
}

// BarItem is one bar.
type BarItem struct {
	// Label names the bar, e.g. the algorithm.
	Label string
	// Value is the bar's magnitude.
	Value float64
}

// Render writes the chart. Bars are scaled to the maximum value across the
// whole chart.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW := 0
	for _, g := range c.Groups {
		for _, bar := range g.Bars {
			if bar.Value > max {
				max = bar.Value
			}
			if len(bar.Label) > labelW {
				labelW = len(bar.Label)
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.Note != "" {
		fmt.Fprintf(&b, "%s\n", c.Note)
	}
	for _, g := range c.Groups {
		fmt.Fprintf(&b, "%s\n", g.Label)
		for _, bar := range g.Bars {
			fmt.Fprintf(&b, "  %-*s %6.3f %s\n", labelW, bar.Label, bar.Value, Bar(bar.Value, max, width))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}

// F formats a float with the given decimals, trimming to integer form when
// decimals is 0.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// K formats a count in thousands with one decimal, the paper's "(in
// 1000s)" presentation.
func K(v float64) string {
	return fmt.Sprintf("%.1f", v/1000)
}

// Pct formats a ratio as a percentage with the given decimals.
func Pct(ratio float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, ratio*100)
}
