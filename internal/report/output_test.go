package report

import (
	"bytes"
	"encoding/csv"
	"encoding/xml"
	"strings"
	"testing"
)

func sampleChart() *BarChart {
	return &BarChart{
		Title: "Figure & <Test>",
		Note:  "a note",
		Groups: []BarGroup{
			{Label: "2 processors", Bars: []BarItem{
				{Label: "RANDOM", Value: 1.0},
				{Label: "LOAD-BAL", Value: 0.8},
			}},
			{Label: "4 processors", Bars: []BarItem{
				{Label: "RANDOM", Value: 1.0},
			}},
		},
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"App", "Value"}}
	tb.AddRow("LocusRoute", "1.5")
	tb.AddRow("short") // short row gets padded
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	if recs[0][0] != "App" || recs[1][1] != "1.5" || recs[2][1] != "" {
		t.Errorf("records = %v", recs)
	}
}

func TestBarChartCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 bars
		t.Fatalf("%d records, want 4", len(recs))
	}
	if recs[2][0] != "2 processors" || recs[2][1] != "LOAD-BAL" {
		t.Errorf("records = %v", recs)
	}
}

func TestBarChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "Figure &amp; &lt;Test&gt;", "RANDOM", "LOAD-BAL", "2 processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// RANDOM's full-scale bar must be wider than LOAD-BAL's.
	if !strings.Contains(out, `width="440"`) {
		t.Error("no full-width bar for the max value")
	}
	if !strings.Contains(out, `width="352"`) { // 0.8 * 440
		t.Error("no proportional bar for 0.8")
	}
}

func TestSVGEmptyChart(t *testing.T) {
	var buf bytes.Buffer
	c := &BarChart{Title: "empty"}
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("empty chart did not render")
	}
}
