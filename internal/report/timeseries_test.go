package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sampleSeries() *TimeSeries {
	return &TimeSeries{
		Title: "toy run",
		Step:  100,
		Series: []Series{
			{Name: "miss_rate_%", Points: []float64{1.5, 2.25, 0}},
			{Name: "occupancy", Points: []float64{3, 2}},
		},
	}
}

func TestTimeSeriesLen(t *testing.T) {
	if got := sampleSeries().Len(); got != 3 {
		t.Errorf("Len() = %d, want 3 (longest series)", got)
	}
	empty := &TimeSeries{}
	if got := empty.Len(); got != 0 {
		t.Errorf("empty Len() = %d, want 0", got)
	}
}

func TestTimeSeriesWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSeries().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want header + 3 rows", len(recs))
	}
	wantHeader := []string{"start", "miss_rate_%", "occupancy"}
	for i, h := range wantHeader {
		if recs[0][i] != h {
			t.Errorf("header[%d] = %q, want %q", i, recs[0][i], h)
		}
	}
	if recs[1][0] != "0" || recs[2][0] != "100" || recs[3][0] != "200" {
		t.Errorf("start column = %v %v %v, want 0 100 200", recs[1][0], recs[2][0], recs[3][0])
	}
	if recs[2][1] != "2.250000" {
		t.Errorf("miss_rate row 2 = %q, want 2.250000", recs[2][1])
	}
	// The short series exports an empty cell past its end.
	if recs[3][2] != "" {
		t.Errorf("short series padding = %q, want empty", recs[3][2])
	}
}

func TestTimeSeriesWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSeries().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg xmlns=") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Errorf("not an SVG document: %.60q ... %.20q", svg, svg[max(0, len(svg)-20):])
	}
	for _, want := range []string{"toy run", "miss_rate_%", "occupancy", "<polyline"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One sparkline row per series, annotated with min/max/last.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("got %d polylines, want 2", got)
	}
	if !strings.Contains(svg, "min 0.000  max 2.250  last 0.000") {
		t.Errorf("missing min/max/last annotation in:\n%s", svg)
	}

	// A single-point series renders as a dot, not a polyline.
	one := &TimeSeries{Series: []Series{{Name: "solo", Points: []float64{5}}}}
	buf.Reset()
	if err := one.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Error("single-point series did not render a circle")
	}
}
