// Package obstest holds test helpers for validating observability
// output. It lives outside the _test.go files so both internal/obs and
// the command tests (which check mtsim -timeline output end to end) can
// share one schema checker.
package obstest

import (
	"encoding/json"
	"testing"
)

// CheckTraceEventJSON asserts raw is well-formed Chrome trace-event JSON
// (object format): a traceEvents array whose records all carry name, ph,
// pid and tid; "X" slices carry ts and dur; instants carry a valid scope;
// counter events carry numeric series; and at least one event of each
// phase a real export produces (M, X, i, C) is present.
func CheckTraceEventJSON(t *testing.T, raw []byte) {
	t.Helper()
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	phases := map[string]int{}
	for i, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d: missing ph: %v", i, ev)
		}
		phases[ph]++
		if _, ok := ev["name"].(string); !ok {
			t.Errorf("event %d: missing name: %v", i, ev)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key].(float64); !ok {
				t.Errorf("event %d (%s): missing %s: %v", i, ph, key, ev)
			}
		}
		switch ph {
		case "M":
			if _, ok := ev["args"].(map[string]any); !ok {
				t.Errorf("metadata event %d: missing args: %v", i, ev)
			}
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("slice event %d: missing dur: %v", i, ev)
			}
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("slice event %d: missing ts: %v", i, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Errorf("instant event %d: bad scope %q: %v", i, s, ev)
			}
		case "C":
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Errorf("counter event %d: missing args: %v", i, ev)
				continue
			}
			for k, v := range args {
				if _, ok := v.(float64); !ok {
					t.Errorf("counter event %d: non-numeric series %q: %v", i, k, ev)
				}
			}
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in export (phases: %v)", ph, phases)
		}
	}
}
