package obs

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Sampler is a Probe that aggregates events into fixed-width windows of
// simulated time, producing the time-resolved view the end-of-run
// aggregates cannot: when the misses happen, when coherence traffic
// bursts, how context occupancy evolves across program phases.
//
// Windows are half-open [i·W, (i+1)·W). Events are bucketed by time, so
// the engine's slightly out-of-order completion reports land in the right
// window regardless of emission order. The final window is partial: its
// End is the run's execution time. When the execution time is an exact
// multiple of the window width, completion events at that instant land in
// a zero-width terminal window (Start == End) — the honest encoding of
// "at the very end".
//
// A Sampler is single-owner: the goroutine running the engine feeds it
// and reads it back only after the run ends. It is not safe for
// concurrent use.
//
//mtlint:guard external -- single-owner: fed and read by the one goroutine running the engine
type Sampler struct {
	window uint64
	meta   RunMeta
	exec   uint64
	ended  bool

	samples []Sample
	// runStart[thread] is the cycle the thread's context was scheduled,
	// or -1 while not running; busy cycles are integrated over windows
	// when the slice closes.
	runStart []int64
	// faults is the bounded side list of fault marks (watchdog fired,
	// engine benched, ...). Faults are not folded into Sample — they are
	// rare run-level events and adding columns would churn the CSV schema
	// — but they surface as Table() metadata so timelines show them.
	faults        []FaultMark
	faultsDropped int
	// migrations is the bounded side list of online-placement migration
	// marks (see migrate.go), kept out of Sample for the same reason as
	// faults.
	migrations        []MigrateMark
	migrationsDropped int
}

// FaultMark is one fault event observed during a run.
type FaultMark struct {
	T    uint64    `json:"t"`
	Kind FaultKind `json:"kind"`
}

// maxFaultMarks bounds the per-run fault list; a run that faults more
// than this has one problem repeated, not many distinct marks worth
// keeping.
const maxFaultMarks = 64

// Sample is one window's aggregated activity. The JSON tags are the SSE
// stream wire format (GET /v1/jobs/{id}/events "sample" events). Samples
// are mutated in place only by their owning Sampler; everyone else gets
// value copies (Samples() returns a fresh slice).
//
//mtlint:guard external -- mutated only by the owning Sampler; published as value copies
type Sample struct {
	// Start and End bound the window in simulated cycles, [Start, End).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Refs, Hits and Misses count references issued in the window.
	Refs   uint64                 `json:"refs"`
	Hits   uint64                 `json:"hits"`
	Misses [NumMissClasses]uint64 `json:"misses"`
	// Upgradeless coherence activity in the window.
	Invalidations uint64 `json:"invalidations"`
	Updates       uint64 `json:"updates"`
	PairTraffic   uint64 `json:"pair_traffic"`
	// Switches counts context switches charged in the window.
	Switches uint64 `json:"switches"`
	// BusyCycles integrates running-context time over the window: a
	// window in which 3 contexts ran the whole time contributes 3·W.
	BusyCycles uint64 `json:"busy_cycles"`
	// Event-queue depth statistics over the engine events processed in
	// the window.
	QueueSum   uint64 `json:"queue_sum"`
	QueueCount uint64 `json:"queue_count"`
	QueueMax   int    `json:"queue_max"`
}

// TotalMisses sums the window's miss classes.
func (s *Sample) TotalMisses() uint64 {
	var n uint64
	for _, m := range s.Misses {
		n += m
	}
	return n
}

// MissRate returns misses per reference in the window (0 when idle).
func (s *Sample) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(s.Refs)
}

// Occupancy returns the mean number of running contexts over the window
// (0 for the zero-width terminal window).
func (s *Sample) Occupancy() float64 {
	if s.End <= s.Start {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.End-s.Start)
}

// QueueMean returns the mean event-queue depth over the window's events.
func (s *Sample) QueueMean() float64 {
	if s.QueueCount == 0 {
		return 0
	}
	return float64(s.QueueSum) / float64(s.QueueCount)
}

// NewSampler returns a sampler with the given window width in simulated
// cycles. It panics if window is zero.
func NewSampler(window uint64) *Sampler {
	if window == 0 {
		panic("obs: sampler window must be positive")
	}
	return &Sampler{window: window}
}

// Window returns the configured window width.
func (s *Sampler) Window() uint64 { return s.window }

// Meta returns the run metadata captured at RunBegin.
func (s *Sampler) Meta() RunMeta { return s.meta }

// at returns the window accumulator covering time t, growing the slice as
// the simulation advances.
func (s *Sampler) at(t uint64) *Sample {
	i := int(t / s.window)
	for len(s.samples) <= i {
		start := uint64(len(s.samples)) * s.window
		s.samples = append(s.samples, Sample{Start: start, End: start + s.window})
	}
	return &s.samples[i]
}

// addBusy integrates a closed running slice [from, to) across windows.
func (s *Sampler) addBusy(from, to uint64) {
	for from < to {
		w := s.at(from)
		end := w.Start + s.window
		if end > to {
			end = to
		}
		w.BusyCycles += end - from
		from = end
	}
}

// RunBegin implements Probe.
func (s *Sampler) RunBegin(meta RunMeta) {
	s.meta = meta
	s.exec = 0
	s.ended = false
	s.samples = s.samples[:0]
	s.faults = s.faults[:0]
	s.faultsDropped = 0
	s.runStart = make([]int64, meta.Threads)
	for i := range s.runStart {
		s.runStart[i] = -1
	}
}

// RunEnd implements Probe.
func (s *Sampler) RunEnd(execTime uint64) {
	s.exec = execTime
	s.ended = true
	// Close any still-open slices (defensive: engines pause or finish
	// every thread before RunEnd).
	for thread, start := range s.runStart {
		if start >= 0 {
			s.addBusy(uint64(start), execTime)
			s.runStart[thread] = -1
		}
	}
	// Materialize trailing empty windows so the series covers the run.
	s.at(execTime)
}

// ThreadRun implements Probe.
func (s *Sampler) ThreadRun(t uint64, proc, thread int) {
	if thread < len(s.runStart) {
		s.runStart[thread] = int64(t)
	}
}

// closeSlice integrates the thread's open running slice ending at t.
func (s *Sampler) closeSlice(t uint64, thread int) {
	if thread >= len(s.runStart) {
		return
	}
	if start := s.runStart[thread]; start >= 0 {
		s.addBusy(uint64(start), t)
		s.runStart[thread] = -1
	}
}

// ThreadPause implements Probe.
func (s *Sampler) ThreadPause(t uint64, proc, thread int, resumeAt uint64) {
	s.closeSlice(t, thread)
}

// ThreadFinish implements Probe.
func (s *Sampler) ThreadFinish(t uint64, proc, thread int) {
	s.closeSlice(t, thread)
}

// CacheHit implements Probe.
func (s *Sampler) CacheHit(t uint64, proc, thread int) {
	w := s.at(t)
	w.Refs++
	w.Hits++
}

// CacheMiss implements Probe.
func (s *Sampler) CacheMiss(t uint64, proc, thread int, class MissClass) {
	w := s.at(t)
	w.Refs++
	w.Misses[class]++
}

// Invalidation implements Probe.
func (s *Sampler) Invalidation(t uint64, from, to int) { s.at(t).Invalidations++ }

// Update implements Probe.
func (s *Sampler) Update(t uint64, from, to int) { s.at(t).Updates++ }

// PairTraffic implements Probe.
func (s *Sampler) PairTraffic(t uint64, from, to int) { s.at(t).PairTraffic++ }

// ContextSwitch implements Probe.
func (s *Sampler) ContextSwitch(t uint64, proc int) { s.at(t).Switches++ }

// QueueDepth implements Probe.
func (s *Sampler) QueueDepth(t uint64, depth int) {
	w := s.at(t)
	w.QueueSum += uint64(depth)
	w.QueueCount++
	if depth > w.QueueMax {
		w.QueueMax = depth
	}
}

// Samples returns the windows in time order. After RunEnd the final
// window's End is clamped to the execution time (the partial window).
func (s *Sampler) Samples() []Sample {
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	if s.ended {
		for i := range out {
			if out[i].End > s.exec {
				out[i].End = s.exec
				if out[i].End < out[i].Start {
					out[i].End = out[i].Start
				}
			}
		}
	}
	return out
}

// Faults returns the recorded fault marks in emission order.
func (s *Sampler) Faults() []FaultMark {
	out := make([]FaultMark, len(s.faults))
	copy(out, s.faults)
	return out
}

// FaultsDropped returns how many marks were discarded once the bounded
// list filled.
func (s *Sampler) FaultsDropped() int { return s.faultsDropped }

// faultNote renders the fault marks as one metadata line for Table().
func (s *Sampler) faultNote() string {
	if len(s.faults) == 0 {
		return ""
	}
	parts := make([]string, len(s.faults))
	for i, f := range s.faults {
		parts[i] = fmt.Sprintf("%s@t=%d", f.Kind, f.T)
	}
	note := "faults: " + strings.Join(parts, ", ")
	if s.faultsDropped > 0 {
		note += fmt.Sprintf(" (+%d dropped)", s.faultsDropped)
	}
	return note
}

// Table renders the samples as a report.Table — one row per window — for
// text rendering and CSV export. Fault marks, which are not windowed,
// ride along as the table's Note metadata.
func (s *Sampler) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Time series: %s / %s (%s engine, %d-cycle windows)",
			s.meta.App, s.meta.Algorithm, s.meta.Engine, s.window),
		Note: s.faultNote(),
		Columns: []string{
			"start", "end", "refs", "hits", "misses", "miss_rate",
			"compulsory", "conflict_intra", "conflict_inter", "invalidation_miss",
			"invalidations", "updates", "pair_traffic", "switches",
			"busy_cycles", "occupancy", "queue_mean", "queue_max",
		},
	}
	for _, w := range s.Samples() {
		t.AddRow(
			fmt.Sprint(w.Start), fmt.Sprint(w.End),
			fmt.Sprint(w.Refs), fmt.Sprint(w.Hits), fmt.Sprint(w.TotalMisses()),
			report.F(w.MissRate(), 4),
			fmt.Sprint(w.Misses[MissCompulsory]), fmt.Sprint(w.Misses[MissConflictIntra]),
			fmt.Sprint(w.Misses[MissConflictInter]), fmt.Sprint(w.Misses[MissInvalidation]),
			fmt.Sprint(w.Invalidations), fmt.Sprint(w.Updates),
			fmt.Sprint(w.PairTraffic), fmt.Sprint(w.Switches),
			fmt.Sprint(w.BusyCycles), report.F(w.Occupancy(), 3),
			report.F(w.QueueMean(), 2), fmt.Sprint(w.QueueMax),
		)
	}
	return t
}

// TimeSeries renders the headline metrics as sparkline series: miss rate,
// context occupancy, pairwise coherence traffic per kilocycle, and mean
// event-queue depth.
func (s *Sampler) TimeSeries() *report.TimeSeries {
	ts := &report.TimeSeries{
		Title: fmt.Sprintf("%s / %s — %d-cycle windows (%s engine)",
			s.meta.App, s.meta.Algorithm, s.window, s.meta.Engine),
		Step: s.window,
	}
	samples := s.Samples()
	missRate := make([]float64, len(samples))
	occupancy := make([]float64, len(samples))
	pairRate := make([]float64, len(samples))
	queue := make([]float64, len(samples))
	for i, w := range samples {
		missRate[i] = w.MissRate() * 100
		occupancy[i] = w.Occupancy()
		if w.End > w.Start {
			pairRate[i] = float64(w.PairTraffic) / float64(w.End-w.Start) * 1000
		}
		queue[i] = w.QueueMean()
	}
	ts.Series = []report.Series{
		{Name: "miss_rate_%", Points: missRate},
		{Name: "occupancy", Points: occupancy},
		{Name: "pair_traffic_per_kcycle", Points: pairRate},
		{Name: "queue_depth_mean", Points: queue},
	}
	return ts
}
