package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries is the bucket-boundary golden: power-of-two
// bounds are inclusive upper edges, so v=2^i lands in the bucket whose
// bound is 2^i and v=2^i+1 in the next one.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v   int64
		idx int
		le  int64 // inclusive upper bound of the bucket v lands in
	}{
		{-5, 0, 1}, // negative clamps to zero
		{0, 0, 1},
		{1, 0, 1},
		{2, 1, 2},
		{3, 2, 4},
		{4, 2, 4},
		{5, 3, 8},
		{8, 3, 8},
		{9, 4, 16},
		{1024, 10, 1024},
		{1025, 11, 2048},
		{1 << 31, 31, 1 << 31},
		{1<<31 + 1, histFiniteBuckets, 0}, // overflow bucket
		{1 << 40, histFiniteBuckets, 0},
	}
	for _, c := range cases {
		if got := histBucketIndex(c.v); got != c.idx {
			t.Errorf("histBucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
		if c.idx < histFiniteBuckets && histBucketBound(c.idx) != c.le {
			t.Errorf("histBucketBound(%d) = %d, want %d", c.idx, histBucketBound(c.idx), c.le)
		}
	}
}

// TestHistogramRenderGolden pins the Prometheus exposition bytes:
// cumulative buckets in ascending le order, empty tail elided into +Inf,
// then _sum and _count.
func TestHistogramRenderGolden(t *testing.T) {
	s := NewMetricSet()
	h := s.Histogram("serve_request_latency_us", "request latency in microseconds")
	for _, v := range []int64{1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP serve_request_latency_us request latency in microseconds\n" +
		"# TYPE serve_request_latency_us histogram\n" +
		"serve_request_latency_us_bucket{le=\"1\"} 1\n" +
		"serve_request_latency_us_bucket{le=\"2\"} 2\n" +
		"serve_request_latency_us_bucket{le=\"4\"} 4\n" +
		"serve_request_latency_us_bucket{le=\"8\"} 4\n" +
		"serve_request_latency_us_bucket{le=\"16\"} 4\n" +
		"serve_request_latency_us_bucket{le=\"32\"} 4\n" +
		"serve_request_latency_us_bucket{le=\"64\"} 4\n" +
		"serve_request_latency_us_bucket{le=\"128\"} 5\n" +
		"serve_request_latency_us_bucket{le=\"+Inf\"} 6\n" +
		"serve_request_latency_us_sum 1099511627886\n" +
		"serve_request_latency_us_count 6\n"
	if b.String() != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestHistogramInterleavedRender: histograms and scalar metrics share one
// sorted name order in WriteTo.
func TestHistogramInterleavedRender(t *testing.T) {
	s := NewMetricSet()
	s.Counter("a_total", "a").Inc()
	s.Histogram("b_latency_us", "b").Observe(1)
	s.Counter("c_total", "c").Inc()
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia := strings.Index(out, "a_total")
	ib := strings.Index(out, "b_latency_us")
	ic := strings.Index(out, "c_total")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("names not interleaved in sorted order:\n%s", out)
	}
}

// TestHistogramQuantile: nearest-rank over bucket bounds.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", "q")
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report 0")
	}
	// 90 fast observations (<=8) and 10 slow (<=1024).
	for i := 0; i < 90; i++ {
		h.Observe(7)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 8 {
		t.Errorf("p50 = %d, want 8", got)
	}
	if got := h.Quantile(0.9); got != 8 {
		t.Errorf("p90 = %d, want 8", got)
	}
	if got := h.Quantile(0.99); got != 1024 {
		t.Errorf("p99 = %d, want 1024", got)
	}
	// Overflow observations report the largest finite bound.
	o := NewHistogram("o", "o")
	o.Observe(1 << 50)
	if got := o.Quantile(0.5); got != histBucketBound(histFiniteBuckets-1) {
		t.Errorf("overflow quantile = %d, want %d", got, histBucketBound(histFiniteBuckets-1))
	}
}

// TestHistogramKindClash: a histogram name cannot collide with a scalar
// metric in either registration order.
func TestHistogramKindClash(t *testing.T) {
	s := NewMetricSet()
	s.Counter("x_total", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("histogram over counter did not panic")
			}
		}()
		s.Histogram("x_total", "x")
	}()
	s2 := NewMetricSet()
	s2.Histogram("y_us", "y")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("counter over histogram did not panic")
			}
		}()
		s2.Counter("y_us", "y")
	}()
}

// TestHistogramSnapshot: Snapshot exposes _count and _sum for histograms.
func TestHistogramSnapshot(t *testing.T) {
	s := NewMetricSet()
	h := s.Histogram("z_us", "z")
	h.Observe(5)
	h.Observe(7)
	snap := s.Snapshot()
	if snap["z_us_count"] != 2 || snap["z_us_sum"] != 12 {
		t.Errorf("snapshot = %v, want z_us_count=2 z_us_sum=12", snap)
	}
}

// TestHistogramConcurrent: observations under contention tally exactly
// (the -race proof for the atomic cells).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}
