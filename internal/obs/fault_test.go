package obs

import (
	"strings"
	"testing"
)

// TestSamplerFaultMarks: Fault is no longer a silent no-op — marks land
// in the bounded side list and surface as Table() metadata without
// changing the CSV column schema.
func TestSamplerFaultMarks(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	s.CacheHit(10, 0, 0)
	s.Fault(42, FaultWatchdog)
	s.Fault(190, FaultFallback)
	s.RunEnd(200)

	marks := s.Faults()
	if len(marks) != 2 {
		t.Fatalf("got %d marks, want 2", len(marks))
	}
	if marks[0] != (FaultMark{T: 42, Kind: FaultWatchdog}) || marks[1] != (FaultMark{T: 190, Kind: FaultFallback}) {
		t.Errorf("marks = %+v", marks)
	}

	tab := s.Table()
	if !strings.Contains(tab.Note, "watchdog@t=42") || !strings.Contains(tab.Note, "fallback@t=190") {
		t.Errorf("table note %q missing fault marks", tab.Note)
	}
	if len(tab.Columns) != 18 {
		t.Errorf("fault marks changed the column schema: %d columns", len(tab.Columns))
	}
}

// TestSamplerFaultWindowEdge: a fault at the exact window boundary — and
// past the run's execution time, where the watchdog actually fires — must
// not materialize windows or shift the series, and the mark keeps its
// exact timestamp rather than being clamped to the final window.
func TestSamplerFaultWindowEdge(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	s.CacheHit(10, 0, 0)
	s.Fault(100, FaultWatchdog) // exact window edge
	s.Fault(250, FaultInjected) // beyond the run's end
	s.RunEnd(150)

	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("got %d windows, want 2 (faults must not materialize windows)", len(samples))
	}
	if samples[1].End != 150 {
		t.Errorf("final window End = %d, want clamped 150", samples[1].End)
	}
	marks := s.Faults()
	if len(marks) != 2 || marks[0].T != 100 || marks[1].T != 250 {
		t.Errorf("marks = %+v, want exact t=100 and t=250", marks)
	}

	// RunBegin resets the list for sampler reuse.
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	if len(s.Faults()) != 0 || s.Table().Note != "" {
		t.Error("RunBegin did not reset fault marks")
	}
}

// TestSamplerFaultBounded: the side list caps at maxFaultMarks and counts
// the overflow.
func TestSamplerFaultBounded(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	for i := 0; i < maxFaultMarks+5; i++ {
		s.Fault(uint64(i), FaultInjected)
	}
	s.RunEnd(10)
	if len(s.Faults()) != maxFaultMarks {
		t.Errorf("kept %d marks, want %d", len(s.Faults()), maxFaultMarks)
	}
	if s.FaultsDropped() != 5 {
		t.Errorf("dropped = %d, want 5", s.FaultsDropped())
	}
	if !strings.Contains(s.Table().Note, "(+5 dropped)") {
		t.Errorf("note %q missing drop count", s.Table().Note)
	}
}
