package obs

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Structured logging and CLI plumbing shared by the commands: every
// binary builds its logger here so diagnostics have one shape, and flag
// validation failures take one exit path (usage text + exit code 2)
// instead of each command improvising.

// NewLogger returns a slog text logger writing to w. Verbose enables
// debug-level records; timestamps are dropped (simulation output is
// deterministic, wall-clock noise in diagnostics is not useful).
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// Process exit codes shared by the commands. Scripts driving long sweeps
// branch on these: 0/1/2 are the conventional success/error/usage trio,
// and CodeDegraded distinguishes "the numbers are correct but were
// produced in degraded mode" (e.g. the fast engine was benched after a
// divergence and the sweep finished on the reference engine) from both
// clean success and hard failure.
const (
	CodeOK       = 0
	CodeError    = 1
	CodeUsage    = 2
	CodeDegraded = 3
)

// UsageError marks a command-line validation failure: the command should
// print its usage text and exit with code 2, the flag package's own
// convention for bad invocations.
type UsageError struct {
	Msg string
}

// Error implements error.
func (e *UsageError) Error() string { return e.Msg }

// Usagef returns a formatted UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// IsUsage reports whether err is (or wraps) a UsageError.
func IsUsage(err error) bool {
	var ue *UsageError
	return errors.As(err, &ue)
}

// Fail logs err on log and returns the process exit code: 2 for usage
// errors (after printing usage text via the usage callback, if non-nil),
// 1 for everything else. Commands call os.Exit with the result so the
// error path is testable without exiting.
func Fail(log *slog.Logger, err error, usage func()) int {
	log.Error(err.Error())
	if IsUsage(err) {
		if usage != nil {
			usage()
		}
		return CodeUsage
	}
	return CodeError
}

// StartHeartbeat logs a progress record every interval until the returned
// stop function is called: the "-progress" lifeline for sweeps that run
// for minutes. status supplies the current position (section name, cell
// counter); it must be safe to call from another goroutine.
func StartHeartbeat(log *slog.Logger, interval time.Duration, status func() string) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	start := time.Now()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				log.Info("progress",
					"elapsed", time.Since(start).Round(time.Second).String(),
					"at", status())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
