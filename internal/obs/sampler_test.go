package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSamplerWindowEdges(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})

	// Half-open windows: t=99 is window 0, t=100 is window 1.
	s.CacheHit(99, 0, 0)
	s.CacheMiss(100, 0, 0, MissCompulsory)
	s.RunEnd(150)

	w := s.Samples()
	if len(w) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(w), w)
	}
	if w[0].Start != 0 || w[0].End != 100 || w[0].Hits != 1 || w[0].TotalMisses() != 0 {
		t.Errorf("window 0 = %+v, want [0,100) with 1 hit", w[0])
	}
	if w[1].Start != 100 || w[1].End != 150 || w[1].Misses[MissCompulsory] != 1 {
		t.Errorf("window 1 = %+v, want [100,150) with 1 compulsory miss", w[1])
	}
}

func TestSamplerFinalPartialWindow(t *testing.T) {
	s := NewSampler(1000)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	s.CacheHit(10, 0, 0)
	s.RunEnd(2500)

	w := s.Samples()
	if len(w) != 3 {
		t.Fatalf("got %d windows, want 3 covering [0,2500)", len(w))
	}
	if w[2].Start != 2000 || w[2].End != 2500 {
		t.Errorf("final window = [%d,%d), want [2000,2500)", w[2].Start, w[2].End)
	}
	// Middle window is empty but materialized so the series has no gaps.
	if w[1].Refs != 0 || w[1].Start != 1000 || w[1].End != 2000 {
		t.Errorf("middle window = %+v, want empty [1000,2000)", w[1])
	}
}

func TestSamplerExactMultipleEndsInZeroWidthWindow(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	s.CacheHit(50, 0, 0)
	// The final completion lands exactly on the window boundary.
	s.ThreadFinish(200, 0, 0)
	s.RunEnd(200)

	w := s.Samples()
	if len(w) != 3 {
		t.Fatalf("got %d windows, want 3", len(w))
	}
	last := w[len(w)-1]
	if last.Start != 200 || last.End != 200 {
		t.Errorf("terminal window = [%d,%d), want zero-width [200,200)", last.Start, last.End)
	}
	if last.Occupancy() != 0 {
		t.Errorf("zero-width window occupancy = %v, want 0", last.Occupancy())
	}
}

func TestSamplerBusyIntegration(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 2, Processors: 2})

	// Thread 0 runs [50, 250): 50 cycles in window 0, 100 in window 1,
	// 50 in window 2.
	s.ThreadRun(50, 0, 0)
	s.ThreadPause(250, 0, 0, 300)
	// Thread 1 runs [0, 100) entirely inside window 0.
	s.ThreadRun(0, 1, 1)
	s.ThreadFinish(100, 1, 1)
	// Thread 0 resumes and is still running at RunEnd: the open slice
	// [300, 310) closes at the execution time.
	s.ThreadRun(300, 0, 0)
	s.RunEnd(310)

	w := s.Samples()
	wantBusy := []uint64{150, 100, 50, 10}
	if len(w) != len(wantBusy) {
		t.Fatalf("got %d windows, want %d", len(w), len(wantBusy))
	}
	for i, want := range wantBusy {
		if w[i].BusyCycles != want {
			t.Errorf("window %d busy = %d, want %d", i, w[i].BusyCycles, want)
		}
	}
	// Window 0 had 1.5 contexts running on average.
	if got := w[0].Occupancy(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("window 0 occupancy = %v, want 1.5", got)
	}
}

func TestSamplerQueueAndRates(t *testing.T) {
	s := NewSampler(100)
	s.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	s.QueueDepth(0, 4)
	s.QueueDepth(10, 2)
	s.CacheHit(10, 0, 0)
	s.CacheMiss(20, 0, 0, MissInvalidation)
	s.PairTraffic(20, 1, 0)
	s.RunEnd(50)

	w := s.Samples()
	if len(w) != 1 {
		t.Fatalf("got %d windows, want 1", len(w))
	}
	if got := w[0].QueueMean(); got != 3 {
		t.Errorf("QueueMean = %v, want 3", got)
	}
	if w[0].QueueMax != 4 {
		t.Errorf("QueueMax = %d, want 4", w[0].QueueMax)
	}
	if got := w[0].MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}

	// Out-of-order emission lands in the right bucket regardless.
	s2 := NewSampler(100)
	s2.RunBegin(RunMeta{App: "toy", Threads: 1, Processors: 1})
	s2.CacheMiss(150, 0, 0, MissCompulsory)
	s2.CacheHit(20, 0, 0) // earlier than the previous event
	s2.RunEnd(200)
	w2 := s2.Samples()
	if w2[0].Hits != 1 || w2[1].Misses[MissCompulsory] != 1 {
		t.Errorf("out-of-order bucketing failed: %+v", w2)
	}
}

func TestSamplerRendering(t *testing.T) {
	s := NewSampler(100)
	playScript(s)

	tab := s.Table()
	if len(tab.Rows) != len(s.Samples()) {
		t.Errorf("table rows %d != samples %d", len(tab.Rows), len(s.Samples()))
	}
	if !strings.Contains(tab.Title, "toy") || !strings.Contains(tab.Title, "100-cycle") {
		t.Errorf("table title %q missing run identity", tab.Title)
	}

	ts := s.TimeSeries()
	if len(ts.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(ts.Series))
	}
	for _, sr := range ts.Series {
		if len(sr.Points) != len(s.Samples()) {
			t.Errorf("series %s has %d points, want %d", sr.Name, len(sr.Points), len(s.Samples()))
		}
	}
	if ts.Step != 100 {
		t.Errorf("Step = %d, want 100", ts.Step)
	}
}

func TestSamplerReuseAcrossRuns(t *testing.T) {
	s := NewSampler(100)
	playScript(s)
	first := s.Samples()

	playScript(s) // RunBegin must reset state
	second := s.Samples()

	if len(first) != len(second) {
		t.Fatalf("run lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("window %d differs across identical runs:\n  first  %+v\n  second %+v",
				i, first[i], second[i])
		}
	}
}

func TestNewSamplerPanicsOnZeroWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSampler(0) did not panic")
		}
	}()
	NewSampler(0)
}
