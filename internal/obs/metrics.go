package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Process-level metrics for the serving layer. Probes (Counter, Sampler,
// Tracer) observe one simulation run; a MetricSet aggregates across the
// whole process lifetime — requests served, cache hits, queue rejections —
// and renders in the Prometheus text exposition format for GET /metrics.
// Stdlib-only, like everything else in this repo: a name-keyed registry of
// atomic int64 cells.

// MetricKind distinguishes monotonically increasing counters from
// set-anywhere gauges, mirroring the Prometheus TYPE annotation.
type MetricKind uint8

const (
	// KindCounter only ever increases (requests_total, hits_total).
	KindCounter MetricKind = iota
	// KindGauge moves both ways (queue depth, in-flight requests).
	KindGauge
	// KindHistogram is a fixed log-scale bucket distribution (see
	// Histogram); registered via MetricSet.Histogram, rendered as
	// Prometheus _bucket/_sum/_count series.
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "counter"
}

// Metric is one named value. All methods are safe for concurrent use and
// allocation-free.
type Metric struct {
	name string
	help string
	kind MetricKind
	v    atomic.Int64
}

// Name returns the metric's registered name.
func (m *Metric) Name() string { return m.name }

// Inc adds one.
func (m *Metric) Inc() { m.v.Add(1) }

// Add adds delta (negative deltas are for gauges; counters must only
// grow — the registry does not police this, the caller's code review
// does).
func (m *Metric) Add(delta int64) { m.v.Add(delta) }

// Set stores v. Only meaningful for gauges.
func (m *Metric) Set(v int64) { m.v.Store(v) }

// Value reads the current value.
func (m *Metric) Value() int64 { return m.v.Load() }

// MetricSet is a registry of metrics with deterministic rendering. The
// zero value is not usable; call NewMetricSet.
type MetricSet struct {
	mu     sync.Mutex
	byName map[string]*Metric
	hists  map[string]*Histogram
}

// NewMetricSet returns an empty registry.
func NewMetricSet() *MetricSet {
	return &MetricSet{byName: make(map[string]*Metric), hists: make(map[string]*Histogram)}
}

// Counter registers (or returns the existing) counter with this name.
// Re-registering a name with a different kind or help text panics: metric
// identity is a program invariant, not runtime data.
func (s *MetricSet) Counter(name, help string) *Metric {
	return s.register(name, help, KindCounter)
}

// Gauge registers (or returns the existing) gauge with this name.
func (s *MetricSet) Gauge(name, help string) *Metric {
	return s.register(name, help, KindGauge)
}

func (s *MetricSet) register(name, help string, kind MetricKind) *Metric {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.byName[name]; ok {
		if m.kind != kind || m.help != help {
			panic(fmt.Sprintf("obs: metric %q re-registered with different kind or help", name))
		}
		return m
	}
	if _, ok := s.hists[name]; ok {
		panic(fmt.Sprintf("obs: metric %q re-registered with different kind or help", name))
	}
	m := &Metric{name: name, help: help, kind: kind}
	s.byName[name] = m
	return m
}

// Histogram registers (or returns the existing) histogram with this name.
// Like register, re-registering with a different kind or help panics.
func (s *MetricSet) Histogram(name, help string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hists[name]; ok {
		if h.help != help {
			panic(fmt.Sprintf("obs: metric %q re-registered with different kind or help", name))
		}
		return h
	}
	if _, ok := s.byName[name]; ok {
		panic(fmt.Sprintf("obs: metric %q re-registered with different kind or help", name))
	}
	h := NewHistogram(name, help)
	s.hists[name] = h
	return h
}

// HistogramByName returns the registered histogram, if any. Benches use
// this to read server-side distributions without exporting struct fields.
func (s *MetricSet) HistogramByName(name string) (*Histogram, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	return h, ok
}

// Snapshot returns the current value of every metric, keyed by name.
func (s *MetricSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.byName)+2*len(s.hists))
	for name, m := range s.byName {
		out[name] = m.Value()
	}
	for name, h := range s.hists {
		out[name+"_count"] = h.Count()
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WriteTo renders every metric in the Prometheus text format, sorted by
// name so the output is deterministic for a given set of values.
// Histograms interleave with scalar metrics in the same name order.
func (s *MetricSet) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	metrics := make([]*Metric, 0, len(s.byName))
	for _, m := range s.byName {
		metrics = append(metrics, m)
	}
	hists := make([]*Histogram, 0, len(s.hists))
	for _, h := range s.hists {
		hists = append(hists, h)
	}
	s.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	var n int64
	hi := 0
	for _, m := range metrics {
		for hi < len(hists) && hists[hi].name < m.name {
			c, err := hists[hi].writeTo(w)
			n += c
			if err != nil {
				return n, err
			}
			hi++
		}
		c, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.kind, m.name, m.Value())
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	for ; hi < len(hists); hi++ {
		c, err := hists[hi].writeTo(w)
		n += c
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
