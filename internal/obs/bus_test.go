package obs

import (
	"testing"
)

// TestBusFanout: every matching subscriber receives every event, in
// publish order, with monotonically increasing sequence numbers.
func TestBusFanout(t *testing.T) {
	b := NewBus(nil)
	a := b.Subscribe("job:1", 8)
	defer a.Close()
	all := b.Subscribe("", 8)
	defer all.Close()
	other := b.Subscribe("job:2", 8)
	defer other.Close()

	b.Publish("job:1", "cell", 1)
	b.Publish("job:1", "cell", 2)

	for i := 1; i <= 2; i++ {
		ev := <-a.C()
		if ev.Kind != "cell" || ev.Data != i {
			t.Errorf("subscriber got %+v, want cell %d", ev, i)
		}
		wild := <-all.C()
		if wild.Seq != ev.Seq {
			t.Errorf("wildcard seq %d != topic seq %d", wild.Seq, ev.Seq)
		}
	}
	select {
	case ev := <-other.C():
		t.Errorf("other-topic subscriber got %+v", ev)
	default:
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", b.Dropped())
	}
}

// TestBusSlowSubscriberDrop is the slow-subscriber drop test: a full
// buffer loses events (never blocks the publisher), the drop counters
// advance, and the delivered events show a sequence gap.
func TestBusSlowSubscriberDrop(t *testing.T) {
	dropped := NewMetricSet().Counter("stream_dropped_events_total", "events dropped")
	b := NewBus(dropped)
	slow := b.Subscribe("t", 2)
	defer slow.Close()

	for i := 0; i < 10; i++ {
		b.Publish("t", "k", i) // must never block
	}
	if slow.Dropped() != 8 {
		t.Errorf("subscriber dropped = %d, want 8", slow.Dropped())
	}
	if b.Dropped() != 8 {
		t.Errorf("bus dropped = %d, want 8", b.Dropped())
	}
	if dropped.Value() != 8 {
		t.Errorf("mirrored metric = %d, want 8", dropped.Value())
	}
	first := <-slow.C()
	second := <-slow.C()
	if first.Data != 0 || second.Data != 1 {
		t.Errorf("buffered events = %v,%v, want the first two published", first.Data, second.Data)
	}
	// The gap is visible to a resynchronizing client: the next published
	// event's Seq jumps past the dropped range.
	b.Publish("t", "k", 10)
	next := <-slow.C()
	if next.Seq != second.Seq+9 {
		t.Errorf("seq gap: got %d after %d, want %d", next.Seq, second.Seq, second.Seq+9)
	}
}

// TestBusSubscribers: topic matching for the publish-side cheap check.
func TestBusSubscribers(t *testing.T) {
	b := NewBus(nil)
	if n := b.Subscribers("x"); n != 0 {
		t.Fatalf("empty bus reports %d subscribers", n)
	}
	s := b.Subscribe("x", 1)
	w := b.Subscribe("", 1)
	if n := b.Subscribers("x"); n != 2 {
		t.Errorf("Subscribers(x) = %d, want 2 (topic + wildcard)", n)
	}
	if n := b.Subscribers("y"); n != 1 {
		t.Errorf("Subscribers(y) = %d, want 1 (wildcard)", n)
	}
	s.Close()
	s.Close() // idempotent
	w.Close()
	if n := b.Subscribers("x"); n != 0 {
		t.Errorf("Subscribers after close = %d, want 0", n)
	}
}
