package obs

// Resilience events: the robustness layer (internal/resilience, the sim
// watchdog) reports faults through the same probe plumbing as
// architectural events, so a timeline or counter view of a run also shows
// when a watchdog fired or an engine was benched. Faults are rare,
// cold-path events — none of the emission sites sit on the per-event hot
// loop.

// FaultKind classifies a resilience event.
type FaultKind uint8

const (
	// FaultWatchdog: a run exceeded its step budget or was canceled.
	FaultWatchdog FaultKind = iota
	// FaultDivergence: a runtime cross-check caught the fast engine
	// disagreeing with the reference engine.
	FaultDivergence
	// FaultFallback: the sweep switched to the reference engine for the
	// remainder of the run.
	FaultFallback
	// FaultInjected: a deliberately injected fault (tests only).
	FaultInjected
	// NumFaultKinds is the number of fault kinds.
	NumFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultWatchdog:
		return "watchdog"
	case FaultDivergence:
		return "divergence"
	case FaultFallback:
		return "fallback"
	case FaultInjected:
		return "injected"
	}
	return "unknown"
}

// Fault implements Probe.
func (m multi) Fault(t uint64, kind FaultKind) {
	for _, p := range m {
		p.Fault(t, kind)
	}
}

// Fault implements Probe.
func (c *Counter) Fault(t uint64, kind FaultKind) {
	if kind < NumFaultKinds {
		c.Faults[kind]++
	}
}

// Fault implements Probe. Faults are not windowed: they are rare,
// run-level events, and folding them into Sample would churn the CSV
// schema every consumer of Table() parses. Instead each mark lands in a
// bounded side list (see Sampler.Faults) surfaced through Table()
// metadata, so CSV/SVG timelines still show when a watchdog fired.
// Fault deliberately does not materialize windows: a mark at or past the
// run's end (the watchdog fires at the budget edge) must not extend the
// series.
func (s *Sampler) Fault(t uint64, kind FaultKind) {
	if len(s.faults) >= maxFaultMarks {
		s.faultsDropped++
		return
	}
	s.faults = append(s.faults, FaultMark{T: t, Kind: kind})
}

// Fault implements Probe. The marker lands on the synthetic "simulator"
// process row, scoped global so Perfetto draws it across the whole view.
func (tr *Tracer) Fault(t uint64, kind FaultKind) {
	tr.events = append(tr.events, traceEvent{
		Name: "fault:" + kind.String(), Cat: "resilience", Ph: "i", Ts: t,
		Pid: tr.meta.Processors, Tid: 0, S: "g",
	})
}
