package obs

import (
	"sync"
	"sync/atomic"
)

// Bus is a small bounded fan-out event bus: the serving tiers publish
// job state transitions and Sampler windows onto it, and each SSE client
// holds one Subscriber. Publish never blocks — a subscriber whose buffer
// is full loses the event and its drop counter advances, so one stalled
// client cannot back-pressure the worker pool. Subscribers detect loss
// by gaps in Event.Seq and resynchronize from a snapshot.

// Event is one published record. Seq is a bus-global monotonically
// increasing sequence number (gaps at a subscriber mean drops).
type Event struct {
	Seq   uint64 `json:"seq"`
	Topic string `json:"-"`
	Kind  string `json:"kind"`
	Data  any    `json:"data"`
}

// Bus routes events to topic subscribers. The zero value is not usable;
// call NewBus.
type Bus struct {
	mu      sync.Mutex
	seq     uint64
	subs    map[*Subscriber]struct{}
	dropped atomic.Int64
	// droppedMetric, when set, mirrors the drop count into a MetricSet
	// counter so /metrics exposes stream loss.
	droppedMetric *Metric
}

// NewBus returns an empty bus. droppedMetric may be nil; when set, it is
// incremented once per dropped event.
func NewBus(droppedMetric *Metric) *Bus {
	return &Bus{subs: make(map[*Subscriber]struct{}), droppedMetric: droppedMetric}
}

// Subscriber receives one topic's events on a bounded channel.
type Subscriber struct {
	bus     *Bus
	topic   string
	ch      chan Event
	dropped atomic.Int64
	closed  bool
}

// Subscribe registers a subscriber for a topic ("" matches every topic)
// with the given channel buffer (minimum 1).
func (b *Bus) Subscribe(topic string, buf int) *Subscriber {
	if buf < 1 {
		buf = 1
	}
	s := &Subscriber{bus: b, topic: topic, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish delivers an event to every matching subscriber, dropping it
// for subscribers whose buffers are full.
func (b *Bus) Publish(topic, kind string, data any) {
	b.mu.Lock()
	b.seq++
	ev := Event{Seq: b.seq, Topic: topic, Kind: kind, Data: data}
	for s := range b.subs {
		if s.topic != "" && s.topic != topic {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
			if b.droppedMetric != nil {
				b.droppedMetric.Inc()
			}
		}
	}
	b.mu.Unlock()
}

// Subscribers reports how many subscribers currently match a topic. The
// serving layer uses this to skip building stream payloads nobody wants.
func (b *Bus) Subscribers(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for s := range b.subs {
		if s.topic == "" || s.topic == topic {
			n++
		}
	}
	return n
}

// Dropped returns the total events dropped across all subscribers.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// C returns the subscriber's receive channel.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped returns the events this subscriber lost to a full buffer.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Close unregisters the subscriber. Its channel is not closed (a
// concurrent Publish may hold it); receivers select on their own done
// signal.
func (s *Subscriber) Close() {
	s.bus.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(s.bus.subs, s)
	}
	s.bus.mu.Unlock()
}
