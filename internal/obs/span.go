package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing for the serving tiers. A SpanContext (trace ID +
// span ID + parent) is minted per request in mtserve/mtcoord, propagated
// through the Mtsim-Trace HTTP header across the coordinator's
// proxy/lease/harvest/steal paths, and every tier records its spans into
// a bounded in-process SpanStore. GET /v1/trace/{id} merges the stores
// and renders Perfetto trace-event JSON, so one sweep's coordinator
// scheduling, per-worker queueing, cache lookups, and engine runs land
// on a single timeline.
//
// Unlike the simulation probes (which run on simulated cycles and must
// be deterministic), spans measure the service itself: IDs are random
// and timestamps are wall-clock microseconds. The determinism contract
// covers the *rendering* — same stored spans, same exported bytes.

// TraceHeader is the HTTP header carrying a SpanContext between tiers,
// formatted as "<trace>-<span>" (16 lowercase hex chars each).
const TraceHeader = "Mtsim-Trace"

// spanIDHexLen is the length of one ID half: 8 random bytes, hex-encoded.
const spanIDHexLen = 16

// SpanContext identifies a position in a trace tree.
type SpanContext struct {
	Trace  string // shared by every span of one distributed operation
	Span   string // this operation's own ID; children cite it as Parent
	Parent string // empty at the root
}

// spanIDFallback seeds IDs when crypto/rand fails (it does not on any
// supported platform, but the telemetry layer must never panic a server).
var spanIDFallback atomic.Uint64

func newID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		v := spanIDFallback.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * uint(i)))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewTrace mints a fresh root context.
func NewTrace() SpanContext {
	return SpanContext{Trace: newID(), Span: newID()}
}

// Valid reports whether the context carries IDs.
func (c SpanContext) Valid() bool { return c.Trace != "" && c.Span != "" }

// Child returns a context for a sub-operation: same trace, fresh span ID,
// parent set to this context's span.
func (c SpanContext) Child() SpanContext {
	return SpanContext{Trace: c.Trace, Span: newID(), Parent: c.Span}
}

// HeaderValue renders the context for the Mtsim-Trace header.
func (c SpanContext) HeaderValue() string { return c.Trace + "-" + c.Span }

func validHexID(s string) bool {
	if len(s) != spanIDHexLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// ParseTrace parses a Mtsim-Trace header value.
func ParseTrace(s string) (SpanContext, bool) {
	trace, span, ok := strings.Cut(s, "-")
	if !ok || !validHexID(trace) || !validHexID(span) {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: span}, true
}

// Span is one completed operation. StartUs is wall-clock Unix
// microseconds; DurUs is 0 for instant events.
type Span struct {
	Trace   string `json:"trace"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Service string `json:"service"`
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Note    string `json:"note,omitempty"`
}

// SpanStore is a bounded in-process span buffer grouped by trace ID.
// When the span budget is exceeded the oldest whole trace is evicted —
// partial traces mislead more than missing ones.
type SpanStore struct {
	mu      sync.Mutex
	max     int
	total   int
	byTrace map[string][]Span
	order   []string // trace IDs in first-seen order, for eviction
	dropped int64
}

// DefaultSpanCapacity bounds a daemon's span store: at ~20 spans per
// sweep cell this holds hundreds of recent sweeps.
const DefaultSpanCapacity = 16384

// NewSpanStore returns a store holding at most maxSpans spans
// (DefaultSpanCapacity when maxSpans <= 0).
func NewSpanStore(maxSpans int) *SpanStore {
	if maxSpans <= 0 {
		maxSpans = DefaultSpanCapacity
	}
	return &SpanStore{max: maxSpans, byTrace: make(map[string][]Span)}
}

// Add records one finished span. Spans without a trace ID are dropped.
func (s *SpanStore) Add(sp Span) {
	if sp.Trace == "" || sp.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byTrace[sp.Trace]; !ok {
		s.order = append(s.order, sp.Trace)
	}
	s.byTrace[sp.Trace] = append(s.byTrace[sp.Trace], sp)
	s.total++
	for s.total > s.max && len(s.order) > 1 {
		oldest := s.order[0]
		if oldest == sp.Trace {
			// Never evict the trace we are actively recording into; rotate
			// it to the back and evict the next-oldest instead.
			s.order = append(s.order[1:], oldest)
			oldest = s.order[0]
		}
		s.total -= len(s.byTrace[oldest])
		s.dropped += int64(len(s.byTrace[oldest]))
		delete(s.byTrace, oldest)
		s.order = s.order[1:]
	}
}

// Dropped returns the number of spans lost to eviction.
func (s *SpanStore) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len returns the number of stored spans.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Trace returns the stored spans for one trace ID, sorted.
func (s *SpanStore) Trace(id string) []Span {
	s.mu.Lock()
	spans := s.byTrace[id]
	out := make([]Span, len(spans))
	copy(out, spans)
	s.mu.Unlock()
	SortSpans(out)
	return out
}

// SortSpans orders spans deterministically: by start time, then service,
// name, and ID — the order every exporter relies on.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartUs != b.StartUs {
			return a.StartUs < b.StartUs
		}
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.ID < b.ID
	})
}

// ActiveSpan is an in-flight span handle. All methods are nil-safe so
// call sites stay terse when tracing is disabled.
type ActiveSpan struct {
	store *SpanStore
	sp    Span
	t0    time.Time
}

// Start opens a child span of parent and returns its handle; End records
// it. The caller must nil-check the store (the probeguard analyzer
// enforces this, mirroring obs.Probe call sites).
func (s *SpanStore) Start(parent SpanContext, service, name string) *ActiveSpan {
	ctx := parent.Child()
	now := time.Now()
	return &ActiveSpan{
		store: s,
		sp: Span{
			Trace: ctx.Trace, ID: ctx.Span, Parent: ctx.Parent,
			Service: service, Name: name, StartUs: now.UnixMicro(),
		},
		t0: now,
	}
}

// AddEvent records an instant (zero-duration) child event of parent.
func (s *SpanStore) AddEvent(parent SpanContext, service, name, note string) {
	ctx := parent.Child()
	s.Add(Span{
		Trace: ctx.Trace, ID: ctx.Span, Parent: ctx.Parent,
		Service: service, Name: name, StartUs: time.Now().UnixMicro(), Note: note,
	})
}

// AddSpan records a completed span of parent covering [start, end] —
// used when the duration was measured before a store call was possible
// (queue wait, for example).
func (s *SpanStore) AddSpan(parent SpanContext, service, name string, start, end time.Time) {
	ctx := parent.Child()
	dur := end.Sub(start).Microseconds()
	if dur < 0 {
		dur = 0
	}
	s.Add(Span{
		Trace: ctx.Trace, ID: ctx.Span, Parent: ctx.Parent,
		Service: service, Name: name, StartUs: start.UnixMicro(), DurUs: dur,
	})
}

// Context returns the active span's own context, for propagating to
// sub-operations. Safe on a nil handle (returns the zero context).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.sp.Trace, Span: a.sp.ID, Parent: a.sp.Parent}
}

// SetNote attaches a short annotation rendered in the span's args.
func (a *ActiveSpan) SetNote(note string) {
	if a != nil {
		a.sp.Note = note
	}
}

// End closes the span and records it in the store. Safe on nil; calling
// End twice records twice (don't).
func (a *ActiveSpan) End() {
	if a == nil || a.store == nil {
		return
	}
	a.sp.DurUs = time.Since(a.t0).Microseconds()
	if a.sp.DurUs < 0 {
		a.sp.DurUs = 0
	}
	a.store.Add(a.sp)
}

// WritePerfetto renders spans as Chrome trace-event JSON, one process
// row per service (coordinator plus each worker) with overlapping spans
// spread across thread tracks by a greedy interval assignment. The
// output is deterministic for a given span set: spans are sorted, and
// track assignment follows the sorted order.
func WritePerfetto(w io.Writer, traceID string, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	// Service -> process ID, in sorted-name order.
	names := make([]string, 0, 4)
	seen := make(map[string]bool)
	for _, sp := range sorted {
		if !seen[sp.Service] {
			seen[sp.Service] = true
			names = append(names, sp.Service)
		}
	}
	sort.Strings(names)
	pidOf := make(map[string]int, len(names))
	for i, n := range names {
		pidOf[n] = i
	}

	// Normalize timestamps so the timeline starts at zero.
	var base int64
	if len(sorted) > 0 {
		base = sorted[0].StartUs
	}

	f := traceFile{
		OtherData: map[string]any{
			"trace_id": traceID,
			"services": len(names),
			"spans":    len(sorted),
		},
	}
	for i, n := range names {
		f.TraceEvents = append(f.TraceEvents,
			traceEvent{Name: "process_name", Ph: "M", Pid: i, Tid: 0, Args: map[string]any{"name": n}},
			traceEvent{Name: "process_sort_index", Ph: "M", Pid: i, Tid: 0, Args: map[string]any{"sort_index": i}},
		)
	}

	// Greedy track assignment per service: each span takes the first
	// track whose previous span ended before it starts.
	trackEnd := make(map[string][]int64, len(names))
	for _, sp := range sorted {
		pid := pidOf[sp.Service]
		ends := trackEnd[sp.Service]
		tid := -1
		for i, end := range ends {
			if end <= sp.StartUs {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(ends)
			ends = append(ends, 0)
		}
		ends[tid] = sp.StartUs + sp.DurUs
		trackEnd[sp.Service] = ends

		ev := traceEvent{
			Name: sp.Name, Cat: "span", Ts: uint64(sp.StartUs - base), Pid: pid, Tid: tid,
			Args: map[string]any{"trace": sp.Trace, "id": sp.ID},
		}
		if sp.Parent != "" {
			ev.Args["parent"] = sp.Parent
		}
		if sp.Note != "" {
			ev.Args["note"] = sp.Note
		}
		if sp.DurUs > 0 {
			dur := uint64(sp.DurUs)
			ev.Ph, ev.Dur = "X", &dur
		} else {
			ev.Ph, ev.S = "i", "t"
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
