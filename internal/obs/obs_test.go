package obs

import (
	"reflect"
	"testing"
)

func TestMissClassStrings(t *testing.T) {
	want := map[MissClass]string{
		MissCompulsory:    "compulsory",
		MissConflictIntra: "conflict-intra",
		MissConflictInter: "conflict-inter",
		MissInvalidation:  "invalidation",
		NumMissClasses:    "unknown",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("MissClass(%d).String() = %q, want %q", c, got, s)
		}
	}
}

// playScript drives p through a small fixed run: two threads on two
// processors, a hit, a miss with an invalidation, a blocking transaction,
// and both finishes.
func playScript(p Probe) {
	p.RunBegin(RunMeta{App: "toy", Algorithm: "RANDOM", Engine: "fast", Processors: 2, Threads: 2})
	p.ThreadRun(0, 0, 0)
	p.ThreadRun(0, 1, 1)
	p.QueueDepth(0, 2)
	p.CacheHit(5, 0, 0)
	p.QueueDepth(6, 2)
	p.CacheMiss(10, 1, 1, MissInvalidation)
	p.PairTraffic(10, 0, 1)
	p.Invalidation(10, 1, 0)
	p.PairTraffic(10, 1, 0)
	p.ThreadPause(10, 1, 1, 40)
	p.ContextSwitch(10, 1)
	p.Update(12, 0, 1)
	p.PairTraffic(12, 0, 1)
	p.ThreadFinish(20, 0, 0)
	p.QueueDepth(20, 1)
	p.ThreadFinish(40, 1, 1)
	p.RunEnd(40)
}

func TestCounter(t *testing.T) {
	var c Counter
	playScript(&c)

	if c.Runs != 1 {
		t.Errorf("Runs = %d, want 1", c.Runs)
	}
	if c.ThreadRuns != 2 || c.Pauses != 1 || c.Finishes != 2 {
		t.Errorf("lifecycle counts = %d/%d/%d, want 2/1/2", c.ThreadRuns, c.Pauses, c.Finishes)
	}
	if c.Hits != 1 || c.TotalMisses() != 1 || c.Misses[MissInvalidation] != 1 {
		t.Errorf("cache counts = hits %d misses %v", c.Hits, c.Misses)
	}
	if c.Invalidations != 1 || c.Updates != 1 || c.Pair != 3 || c.Switches != 1 {
		t.Errorf("coherence counts = %d/%d/%d/%d, want 1/1/3/1",
			c.Invalidations, c.Updates, c.Pair, c.Switches)
	}
	if c.QueueSamples != 3 || c.MaxQueueDepth != 2 {
		t.Errorf("queue stats = %d samples max %d, want 3 max 2", c.QueueSamples, c.MaxQueueDepth)
	}
	if c.ExecTime != 40 {
		t.Errorf("ExecTime = %d, want 40", c.ExecTime)
	}
	if c.Meta.App != "toy" || c.Meta.Processors != 2 {
		t.Errorf("Meta = %+v", c.Meta)
	}
}

func TestMulti(t *testing.T) {
	if got := Multi(); got != nil {
		t.Errorf("Multi() = %v, want nil", got)
	}
	if got := Multi(nil, nil); got != nil {
		t.Errorf("Multi(nil, nil) = %v, want nil", got)
	}

	var c Counter
	if got := Multi(nil, &c, nil); got != Probe(&c) {
		t.Errorf("Multi with one live probe should unwrap it, got %T", got)
	}

	// Two counters through one Multi must both see every event.
	var a, b Counter
	playScript(Multi(&a, nil, &b))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fanned-out counters diverged:\n  a %+v\n  b %+v", a, b)
	}
	if a.Runs != 1 || a.Pair != 3 {
		t.Errorf("fanned-out counter missed events: %+v", a)
	}
}
