package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewLoggerDeterministic(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, false)
	log.Info("hello", "app", "MP3D", "procs", 8)
	got := buf.String()
	if got != "level=INFO msg=hello app=MP3D procs=8\n" {
		t.Errorf("unexpected log line: %q", got)
	}
	if strings.Contains(got, "time=") {
		t.Errorf("log line carries a timestamp: %q", got)
	}

	buf.Reset()
	log.Debug("quiet")
	if buf.Len() != 0 {
		t.Errorf("debug record emitted at info level: %q", buf.String())
	}

	buf.Reset()
	NewLogger(&buf, true).Debug("loud")
	if !strings.Contains(buf.String(), "msg=loud") {
		t.Errorf("verbose logger dropped debug record: %q", buf.String())
	}
}

func TestUsageError(t *testing.T) {
	err := Usagef("bad flag %q", "-x")
	if !IsUsage(err) {
		t.Error("Usagef result not recognized by IsUsage")
	}
	if err.Error() != `bad flag "-x"` {
		t.Errorf("Error() = %q", err.Error())
	}
	wrapped := fmt.Errorf("parsing: %w", err)
	if !IsUsage(wrapped) {
		t.Error("wrapped usage error not recognized")
	}
	if IsUsage(fmt.Errorf("plain")) {
		t.Error("plain error recognized as usage error")
	}
}

func TestFail(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, false)

	usageCalled := false
	code := Fail(log, Usagef("need an app"), func() { usageCalled = true })
	if code != 2 || !usageCalled {
		t.Errorf("usage error: code=%d usageCalled=%v, want 2/true", code, usageCalled)
	}
	if !strings.Contains(buf.String(), "need an app") {
		t.Errorf("error not logged: %q", buf.String())
	}

	usageCalled = false
	code = Fail(log, fmt.Errorf("boom"), func() { usageCalled = true })
	if code != 1 || usageCalled {
		t.Errorf("plain error: code=%d usageCalled=%v, want 1/false", code, usageCalled)
	}

	// nil usage callback must not panic.
	if code := Fail(log, Usagef("x"), nil); code != 2 {
		t.Errorf("nil usage callback: code=%d, want 2", code)
	}
}

func TestStartHeartbeat(t *testing.T) {
	var mu syncBuffer
	log := NewLogger(&mu, false)
	stop := StartHeartbeat(log, time.Millisecond, func() string { return "cell 3/10" })
	defer stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(mu.String(), "cell 3/10") {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no heartbeat within 2s: %q", mu.String())
}

func TestStartHeartbeatDisabled(t *testing.T) {
	stop := StartHeartbeat(NewLogger(&bytes.Buffer{}, false), 0, func() string { return "" })
	stop() // no-op, must not panic
}

// syncBuffer is a bytes.Buffer safe for the heartbeat goroutine to write
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
