package obs

import "fmt"

// Migration events: online adaptive placement (sim.RunOnlineGuarded)
// reports every applied thread migration through the probe plumbing, so
// a timeline or counter view of an online run shows when and where the
// placement changed. Migrations happen only at detection boundaries —
// none of the emission sites sit on the per-event hot loop.

// MigrateMark is one thread migration observed during a run.
type MigrateMark struct {
	T      uint64 `json:"t"`
	Thread int    `json:"thread"`
	From   int    `json:"from"`
	To     int    `json:"to"`
}

// maxMigrateMarks bounds the per-run migration list kept by a Sampler; a
// run migrating more than this is thrashing, and the aggregate counters
// still record every move.
const maxMigrateMarks = 1024

// Migrate implements Probe.
func (m multi) Migrate(t uint64, thread, from, to int) {
	for _, p := range m {
		p.Migrate(t, thread, from, to)
	}
}

// Migrate implements Probe.
func (c *Counter) Migrate(t uint64, thread, from, to int) { c.Migrations++ }

// Migrate implements Probe. Like faults, migrations are not windowed:
// they are rare boundary-level events kept in a bounded side list (see
// Sampler.Migrations) instead of churning the Sample CSV schema.
func (s *Sampler) Migrate(t uint64, thread, from, to int) {
	if len(s.migrations) >= maxMigrateMarks {
		s.migrationsDropped++
		return
	}
	s.migrations = append(s.migrations, MigrateMark{T: t, Thread: thread, From: from, To: to})
}

// Migrations returns the bounded list of migration marks observed, and
// how many further marks were dropped at the cap.
func (s *Sampler) Migrations() ([]MigrateMark, int) {
	return append([]MigrateMark(nil), s.migrations...), s.migrationsDropped
}

// Migrate implements Probe. The marker lands on the destination
// processor's row so the timeline shows where the thread arrived.
func (tr *Tracer) Migrate(t uint64, thread, from, to int) {
	tr.events = append(tr.events, traceEvent{
		Name: fmt.Sprintf("migrate:t%d:p%d->p%d", thread, from, to),
		Cat:  "placement", Ph: "i", Ts: t,
		Pid: to, Tid: 0, S: "p",
	})
}
