package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs/obstest"
)

// TestPerfettoGolden locks the exporter's exact JSON against
// testdata/perfetto.json: the trace-event schema is consumed by an
// external tool (Perfetto), so any drift in field names, event phases or
// metadata must be deliberate. Run with UPDATE_GOLDEN=1 to regenerate.
func TestPerfettoGolden(t *testing.T) {
	tr := NewTracer()
	playScript(tr)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "perfetto.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestPerfettoSchema validates the exported JSON against the trace-event
// format contract: a traceEvents array whose records all carry name/ph/
// ts/pid/tid, "X" slices carry dur, instants carry a scope, and counter
// events carry numeric args.
func TestPerfettoSchema(t *testing.T) {
	tr := NewTracer()
	playScript(tr)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceEventJSON(t, buf.Bytes())
}

func TestTracerSlices(t *testing.T) {
	tr := NewTracer()
	tr.RunBegin(RunMeta{App: "toy", Processors: 1, Threads: 1})
	tr.ThreadRun(0, 0, 0)
	tr.ThreadPause(30, 0, 0, 80) // run [0,30) then stall [30,80)
	tr.ThreadRun(80, 0, 0)
	tr.RunEnd(100) // open run slice [80,100) closes at exec time

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	type slice struct {
		name    string
		ts, dur uint64
	}
	var got []slice
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			got = append(got, slice{ev.Name, ev.Ts, *ev.Dur})
		}
	}
	want := []slice{
		{"run", 0, 30},
		{"stall", 30, 50},
		{"run", 80, 20},
	}
	if len(got) != len(want) {
		t.Fatalf("slices = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slice %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
