package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Tracer is a Probe that records a run as Chrome trace-event JSON, the
// format Perfetto (https://ui.perfetto.dev) and chrome://tracing load
// directly. Each simulated processor becomes a process row, each thread a
// thread track within it: "run" slices while the context occupies the
// pipeline, "stall" slices while it waits on memory, instant markers for
// cache misses and coherence messages, and a counter track for the
// engine's event-queue depth.
//
// Trace-event timestamps are microseconds; the exporter writes one
// simulated cycle as one microsecond, so Perfetto's "us" readouts are
// cycles. Every event is recorded, so the tracer is intended for the
// small runs a human actually wants to look at — attach a Sampler
// instead for aggregate views of long runs.
//
// Like Sampler, a Tracer is single-owner: the goroutine running the
// engine feeds it and exports it after the run. Not safe for concurrent
// use.
//
//mtlint:guard external -- single-owner: fed and exported by the one goroutine running the engine
type Tracer struct {
	meta   RunMeta
	exec   uint64
	events []traceEvent
	// open[thread] is the running slice's start (or -1) and processor,
	// mirroring Sampler's slice bookkeeping.
	openStart []int64
	openProc  []int32
	// threadProc records where each thread first ran, for thread_name
	// metadata.
	threadProc []int32
}

// traceEvent is one Chrome trace-event record. Field order is the JSON
// output order; the golden test pins it.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format of the trace-event spec.
type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Meta returns the run metadata captured at RunBegin.
func (tr *Tracer) Meta() RunMeta { return tr.meta }

// Events returns the number of recorded trace events (excluding the
// metadata records synthesized at export).
func (tr *Tracer) Events() int { return len(tr.events) }

// RunBegin implements Probe.
func (tr *Tracer) RunBegin(meta RunMeta) {
	tr.meta = meta
	tr.exec = 0
	tr.events = tr.events[:0]
	tr.openStart = make([]int64, meta.Threads)
	tr.openProc = make([]int32, meta.Threads)
	tr.threadProc = make([]int32, meta.Threads)
	for i := range tr.openStart {
		tr.openStart[i] = -1
		tr.threadProc[i] = -1
	}
}

// RunEnd implements Probe.
func (tr *Tracer) RunEnd(execTime uint64) {
	tr.exec = execTime
	for thread, start := range tr.openStart {
		if start >= 0 {
			tr.slice("run", "sched", uint64(start), execTime, int(tr.openProc[thread]), thread)
			tr.openStart[thread] = -1
		}
	}
}

func (tr *Tracer) slice(name, cat string, from, to uint64, proc, thread int) {
	dur := to - from
	tr.events = append(tr.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", Ts: from, Dur: &dur, Pid: proc, Tid: thread,
	})
}

// ThreadRun implements Probe.
func (tr *Tracer) ThreadRun(t uint64, proc, thread int) {
	if thread >= len(tr.openStart) {
		return
	}
	tr.openStart[thread] = int64(t)
	tr.openProc[thread] = int32(proc)
	if tr.threadProc[thread] < 0 {
		tr.threadProc[thread] = int32(proc)
	}
}

// closeSlice emits the thread's open running slice ending at t, if any.
func (tr *Tracer) closeSlice(t uint64, proc, thread int) {
	if thread >= len(tr.openStart) {
		return
	}
	if start := tr.openStart[thread]; start >= 0 {
		tr.slice("run", "sched", uint64(start), t, proc, thread)
		tr.openStart[thread] = -1
	}
}

// ThreadPause implements Probe.
func (tr *Tracer) ThreadPause(t uint64, proc, thread int, resumeAt uint64) {
	tr.closeSlice(t, proc, thread)
	tr.slice("stall", "mem", t, resumeAt, proc, thread)
}

// ThreadFinish implements Probe.
func (tr *Tracer) ThreadFinish(t uint64, proc, thread int) {
	tr.closeSlice(t, proc, thread)
	tr.events = append(tr.events, traceEvent{
		Name: "finish", Cat: "sched", Ph: "i", Ts: t, Pid: proc, Tid: thread, S: "t",
	})
}

// CacheHit implements Probe. Hits are the overwhelmingly common case and
// are not recorded individually; the run slices already show them as
// uninterrupted execution.
func (tr *Tracer) CacheHit(t uint64, proc, thread int) {}

// CacheMiss implements Probe.
func (tr *Tracer) CacheMiss(t uint64, proc, thread int, class MissClass) {
	tr.events = append(tr.events, traceEvent{
		Name: "miss:" + class.String(), Cat: "cache", Ph: "i", Ts: t, Pid: proc, Tid: thread, S: "t",
	})
}

// Invalidation implements Probe. The marker lands on the victim
// processor's row; args carry the writer.
func (tr *Tracer) Invalidation(t uint64, from, to int) {
	tr.events = append(tr.events, traceEvent{
		Name: "invalidate", Cat: "coherence", Ph: "i", Ts: t, Pid: to, Tid: 0, S: "p",
		Args: map[string]any{"from_proc": from},
	})
}

// Update implements Probe.
func (tr *Tracer) Update(t uint64, from, to int) {
	tr.events = append(tr.events, traceEvent{
		Name: "update", Cat: "coherence", Ph: "i", Ts: t, Pid: to, Tid: 0, S: "p",
		Args: map[string]any{"from_proc": from},
	})
}

// PairTraffic implements Probe. Pair traffic is the sum of events already
// marked individually; nothing extra to record.
func (tr *Tracer) PairTraffic(t uint64, from, to int) {}

// ContextSwitch implements Probe.
func (tr *Tracer) ContextSwitch(t uint64, proc int) {
	tr.events = append(tr.events, traceEvent{
		Name: "switch", Cat: "sched", Ph: "i", Ts: t, Pid: proc, Tid: 0, S: "p",
	})
}

// QueueDepth implements Probe. Depth samples become a counter track on
// the synthetic "simulator" process.
func (tr *Tracer) QueueDepth(t uint64, depth int) {
	tr.events = append(tr.events, traceEvent{
		Name: "event queue", Ph: "C", Ts: t, Pid: tr.meta.Processors, Tid: 0,
		Args: map[string]any{"depth": depth},
	})
}

// Export writes the recorded run as trace-event JSON: metadata records
// naming every process and thread, then the events in emission order.
func (tr *Tracer) Export(w io.Writer) error {
	f := traceFile{
		OtherData: map[string]any{
			"app":           tr.meta.App,
			"algorithm":     tr.meta.Algorithm,
			"engine":        tr.meta.Engine,
			"processors":    tr.meta.Processors,
			"threads":       tr.meta.Threads,
			"exec_cycles":   tr.exec,
			"cycles_per_us": 1,
		},
	}
	meta := func(name string, pid, tid int, args map[string]any) {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args,
		})
	}
	for p := 0; p < tr.meta.Processors; p++ {
		meta("process_name", p, 0, map[string]any{"name": fmt.Sprintf("Processor %d", p)})
		meta("process_sort_index", p, 0, map[string]any{"sort_index": p})
	}
	meta("process_name", tr.meta.Processors, 0, map[string]any{"name": "simulator"})
	meta("process_sort_index", tr.meta.Processors, 0, map[string]any{"sort_index": tr.meta.Processors})
	for thread, proc := range tr.threadProc {
		if proc < 0 {
			continue
		}
		meta("thread_name", int(proc), thread, map[string]any{"name": fmt.Sprintf("Thread %d", thread)})
	}
	f.TraceEvents = append(f.TraceEvents, tr.events...)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		return err
	}
	return bw.Flush()
}
