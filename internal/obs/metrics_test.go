package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestMetricSetRender: deterministic, sorted Prometheus text output.
func TestMetricSetRender(t *testing.T) {
	s := NewMetricSet()
	reqs := s.Counter("serve_requests_total", "HTTP requests accepted")
	depth := s.Gauge("serve_queue_depth", "tasks waiting in the queue")
	reqs.Add(3)
	depth.Set(7)

	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP serve_queue_depth tasks waiting in the queue\n" +
		"# TYPE serve_queue_depth gauge\n" +
		"serve_queue_depth 7\n" +
		"# HELP serve_requests_total HTTP requests accepted\n" +
		"# TYPE serve_requests_total counter\n" +
		"serve_requests_total 3\n"
	if b.String() != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestMetricSetReRegister: same identity returns the same cell; a kind
// clash panics.
func TestMetricSetReRegister(t *testing.T) {
	s := NewMetricSet()
	a := s.Counter("x_total", "x")
	if b := s.Counter("x_total", "x"); a != b {
		t.Fatal("re-registering identical metric returned a new cell")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	s.Gauge("x_total", "x")
}

// TestMetricConcurrent: counters under contention count exactly; run
// under -race this is the data-race proof.
func TestMetricConcurrent(t *testing.T) {
	s := NewMetricSet()
	m := s.Counter("c_total", "c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Inc()
			}
		}()
	}
	wg.Wait()
	if got := m.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if snap := s.Snapshot(); snap["c_total"] != 8000 {
		t.Fatalf("snapshot = %v", snap)
	}
}
