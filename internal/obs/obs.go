// Package obs is the simulator's observability layer: a Probe interface
// the simulation engines invoke at every interesting event (thread
// scheduling, cache hits and misses, coherence messages, context switches,
// event-queue depth), plus consumers that turn those events into
// time-series samples (Sampler), Perfetto/Chrome trace-event timelines
// (Tracer) and plain counters (Counter).
//
// The contract with internal/sim is strict:
//
//   - Probes observe; they never mutate simulation state. A run with any
//     probe attached produces a Result deeply equal to the same run with
//     no probe (asserted by the differential suite in internal/core).
//   - The disabled path is free: engines guard every emission with a
//     single nil check, and a nil probe adds no allocations to the hot
//     path (asserted by BenchmarkEngineProbeDisabled).
//   - Event times are simulated cycles. Within one thread the Run →
//     Pause/Finish sequence is time-ordered, but times are NOT globally
//     monotone: an engine processing an event at cycle t may immediately
//     report a completion at t + latency, while the next engine event is
//     earlier. Consumers must bucket by time, not assume ordering.
package obs

// MissClass classifies a cache miss. The values mirror internal/sim's
// MissKind exactly (compulsory, intra-thread conflict, inter-thread
// conflict, invalidation); a test in internal/sim locks the
// correspondence so neither enum can drift.
type MissClass uint8

const (
	// MissCompulsory is the first reference to a block by a processor.
	MissCompulsory MissClass = iota
	// MissConflictIntra re-fetches a block the same thread evicted.
	MissConflictIntra
	// MissConflictInter re-fetches a block a co-located thread evicted.
	MissConflictInter
	// MissInvalidation re-fetches a block a remote write invalidated.
	MissInvalidation
	// NumMissClasses is the number of miss classes.
	NumMissClasses
)

// String names the miss class.
func (c MissClass) String() string {
	switch c {
	case MissCompulsory:
		return "compulsory"
	case MissConflictIntra:
		return "conflict-intra"
	case MissConflictInter:
		return "conflict-inter"
	case MissInvalidation:
		return "invalidation"
	}
	return "unknown"
}

// RunMeta identifies a simulation run to a probe.
type RunMeta struct {
	// App and Algorithm name the workload and placement.
	App, Algorithm string
	// Engine is "fast" or "reference".
	Engine string
	// Processors and Threads size the machine and workload.
	Processors, Threads int
}

// Probe receives simulation events. Implementations must be cheap — every
// method is called from the engine's hot loop — and must not retain or
// mutate engine state. All times are simulated cycles.
//
// Thread lifecycle as seen by a probe: ThreadRun fires when a hardware
// context is scheduled onto its processor's pipeline; ThreadPause fires
// when the running thread issues a blocking memory transaction at time t
// that completes at resumeAt (the context is stalled in between);
// ThreadFinish fires when the thread's last reference completes. A thread
// that ends on a blocking transaction emits ThreadPause(t, …, done)
// followed by ThreadFinish(done, …); one that ends on a cache hit emits
// only ThreadFinish.
type Probe interface {
	// RunBegin fires once before the first event.
	RunBegin(meta RunMeta)
	// RunEnd fires once after the last event with the execution time.
	RunEnd(execTime uint64)
	// ThreadRun: the processor schedules the thread's context.
	ThreadRun(t uint64, proc, thread int)
	// ThreadPause: the thread issues a blocking transaction at t and its
	// context stalls until resumeAt.
	ThreadPause(t uint64, proc, thread int, resumeAt uint64)
	// ThreadFinish: the thread's final reference completes at t.
	ThreadFinish(t uint64, proc, thread int)
	// CacheHit: a reference was satisfied without a network transaction.
	CacheHit(t uint64, proc, thread int)
	// CacheMiss: a reference missed; class mirrors sim.MissKind.
	CacheMiss(t uint64, proc, thread int, class MissClass)
	// Invalidation: proc from's write invalidated a copy in proc to.
	Invalidation(t uint64, from, to int)
	// Update: proc from's write pushed a new value to proc to
	// (write-update protocol).
	Update(t uint64, from, to int)
	// PairTraffic: one unit of pairwise coherence traffic from → to
	// (invalidation messages, dirty-data fetches, update messages —
	// exactly the events behind Result.PairTraffic).
	PairTraffic(t uint64, from, to int)
	// ContextSwitch: the processor paid the pipeline-drain cost to switch
	// contexts.
	ContextSwitch(t uint64, proc int)
	// QueueDepth: the engine's event-queue depth after dequeuing the
	// event being processed at time t. Queue depth is engine-internal
	// bookkeeping: the two engines agree on every architectural event
	// above, but may momentarily disagree on stale-entry counts here.
	QueueDepth(t uint64, depth int)
	// Fault: a resilience event (watchdog trip, engine divergence,
	// fallback engagement) at time t. Fault events are emitted by the
	// robustness layer, not the architectural simulation, and are always
	// cold-path.
	Fault(t uint64, kind FaultKind)
	// Migrate: online adaptive placement moved a thread from processor
	// from to processor to at a detection boundary at time t. Emitted
	// only by online runs (sim.RunOnlineGuarded), always cold-path.
	Migrate(t uint64, thread, from, to int)
}

// multi fans events out to several probes in order.
type multi []Probe

// Multi combines probes into one; nil entries are dropped. It returns nil
// when nothing remains and the sole probe unwrapped, so engines keep their
// single nil check.
func Multi(probes ...Probe) Probe {
	var ps multi
	for _, p := range probes {
		if p != nil {
			ps = append(ps, p)
		}
	}
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return ps
}

func (m multi) RunBegin(meta RunMeta) {
	for _, p := range m {
		p.RunBegin(meta)
	}
}
func (m multi) RunEnd(execTime uint64) {
	for _, p := range m {
		p.RunEnd(execTime)
	}
}
func (m multi) ThreadRun(t uint64, proc, thread int) {
	for _, p := range m {
		p.ThreadRun(t, proc, thread)
	}
}
func (m multi) ThreadPause(t uint64, proc, thread int, resumeAt uint64) {
	for _, p := range m {
		p.ThreadPause(t, proc, thread, resumeAt)
	}
}
func (m multi) ThreadFinish(t uint64, proc, thread int) {
	for _, p := range m {
		p.ThreadFinish(t, proc, thread)
	}
}
func (m multi) CacheHit(t uint64, proc, thread int) {
	for _, p := range m {
		p.CacheHit(t, proc, thread)
	}
}
func (m multi) CacheMiss(t uint64, proc, thread int, class MissClass) {
	for _, p := range m {
		p.CacheMiss(t, proc, thread, class)
	}
}
func (m multi) Invalidation(t uint64, from, to int) {
	for _, p := range m {
		p.Invalidation(t, from, to)
	}
}
func (m multi) Update(t uint64, from, to int) {
	for _, p := range m {
		p.Update(t, from, to)
	}
}
func (m multi) PairTraffic(t uint64, from, to int) {
	for _, p := range m {
		p.PairTraffic(t, from, to)
	}
}
func (m multi) ContextSwitch(t uint64, proc int) {
	for _, p := range m {
		p.ContextSwitch(t, proc)
	}
}
func (m multi) QueueDepth(t uint64, depth int) {
	for _, p := range m {
		p.QueueDepth(t, depth)
	}
}

// Counter is the cheapest possible probe: one counter per event kind.
// It doubles as the overhead floor for probe-on benchmarking and as the
// consistency oracle in tests (its counts must match Result totals).
type Counter struct {
	Runs          uint64
	ThreadRuns    uint64
	Pauses        uint64
	Finishes      uint64
	Hits          uint64
	Misses        [NumMissClasses]uint64
	Invalidations uint64
	Updates       uint64
	Pair          uint64
	Switches      uint64
	QueueSamples  uint64
	Faults        [NumFaultKinds]uint64
	Migrations    uint64
	MaxQueueDepth int
	ExecTime      uint64
	Meta          RunMeta
}

// TotalMisses sums the per-class miss counts.
func (c *Counter) TotalMisses() uint64 {
	var n uint64
	for _, m := range c.Misses {
		n += m
	}
	return n
}

// RunBegin implements Probe.
func (c *Counter) RunBegin(meta RunMeta) { c.Runs++; c.Meta = meta }

// RunEnd implements Probe.
func (c *Counter) RunEnd(execTime uint64) { c.ExecTime = execTime }

// ThreadRun implements Probe.
func (c *Counter) ThreadRun(t uint64, proc, thread int) { c.ThreadRuns++ }

// ThreadPause implements Probe.
func (c *Counter) ThreadPause(t uint64, proc, thread int, resumeAt uint64) { c.Pauses++ }

// ThreadFinish implements Probe.
func (c *Counter) ThreadFinish(t uint64, proc, thread int) { c.Finishes++ }

// CacheHit implements Probe.
func (c *Counter) CacheHit(t uint64, proc, thread int) { c.Hits++ }

// CacheMiss implements Probe.
func (c *Counter) CacheMiss(t uint64, proc, thread int, class MissClass) { c.Misses[class]++ }

// Invalidation implements Probe.
func (c *Counter) Invalidation(t uint64, from, to int) { c.Invalidations++ }

// Update implements Probe.
func (c *Counter) Update(t uint64, from, to int) { c.Updates++ }

// PairTraffic implements Probe.
func (c *Counter) PairTraffic(t uint64, from, to int) { c.Pair++ }

// ContextSwitch implements Probe.
func (c *Counter) ContextSwitch(t uint64, proc int) { c.Switches++ }

// QueueDepth implements Probe.
func (c *Counter) QueueDepth(t uint64, depth int) {
	c.QueueSamples++
	if depth > c.MaxQueueDepth {
		c.MaxQueueDepth = depth
	}
}
