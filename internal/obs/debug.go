package obs

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer serves net/http/pprof on its own listener and mux —
// never on the public API port, so profiling endpoints cannot leak into
// an exposed surface. Both daemons gate it behind -debug-addr. Returns
// a stop function, or an error if the listener could not be opened.
//
// The handlers are registered explicitly instead of importing the
// package for its DefaultServeMux side effect: the daemons' public muxes
// must stay pprof-free even if someone routes DefaultServeMux somewhere.
func StartDebugServer(addr string, log *slog.Logger) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	if log != nil {
		log.Info("debug server listening", "addr", ln.Addr().String())
	}
	return func() { _ = srv.Close() }, nil
}
