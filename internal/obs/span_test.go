package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanContextHeader: round trip through the Mtsim-Trace wire format.
func TestSpanContextHeader(t *testing.T) {
	root := NewTrace()
	if !root.Valid() || root.Parent != "" {
		t.Fatalf("NewTrace() = %+v, want valid root", root)
	}
	parsed, ok := ParseTrace(root.HeaderValue())
	if !ok || parsed.Trace != root.Trace || parsed.Span != root.Span {
		t.Fatalf("ParseTrace(%q) = %+v, %v", root.HeaderValue(), parsed, ok)
	}
	child := root.Child()
	if child.Trace != root.Trace || child.Parent != root.Span || child.Span == root.Span {
		t.Errorf("Child() = %+v, want same trace, parent=%s", child, root.Span)
	}
	for _, bad := range []string{"", "xyz", "deadbeef-cafe", strings.Repeat("g", 16) + "-" + strings.Repeat("a", 16), root.Trace + "_" + root.Span} {
		if _, ok := ParseTrace(bad); ok {
			t.Errorf("ParseTrace(%q) accepted malformed header", bad)
		}
	}
}

// TestSpanStoreBounded: exceeding the span budget evicts whole oldest
// traces, never the trace currently being recorded.
func TestSpanStoreBounded(t *testing.T) {
	s := NewSpanStore(4)
	old := NewTrace()
	for i := 0; i < 3; i++ {
		sp := s.Start(old, "svc", "op")
		sp.End()
	}
	cur := NewTrace()
	for i := 0; i < 4; i++ {
		sp := s.Start(cur, "svc", "op")
		sp.End()
	}
	if got := len(s.Trace(old.Trace)); got != 0 {
		t.Errorf("old trace kept %d spans, want evicted", got)
	}
	if got := len(s.Trace(cur.Trace)); got != 4 {
		t.Errorf("current trace has %d spans, want 4", got)
	}
	if s.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", s.Dropped())
	}
}

// TestSpanStoreNilSafe: ActiveSpan methods tolerate a nil handle, the
// idiom for telemetry-disabled servers.
func TestSpanStoreNilSafe(t *testing.T) {
	var a *ActiveSpan
	a.End()
	a.SetNote("x")
	if a.Context().Valid() {
		t.Error("nil handle returned a valid context")
	}
}

// TestWritePerfetto: the exported trace-event JSON is deterministic,
// groups spans into one process row per service, and spreads overlapping
// spans across thread tracks.
func TestWritePerfetto(t *testing.T) {
	base := time.Now()
	tr := "0123456789abcdef"
	spans := []Span{
		{Trace: tr, ID: "a000000000000000", Service: "mtcoord", Name: "sweep", StartUs: base.UnixMicro(), DurUs: 5000},
		{Trace: tr, ID: "b000000000000000", Parent: "a000000000000000", Service: "w0", Name: "cell fft", StartUs: base.UnixMicro() + 100, DurUs: 2000},
		// Overlaps the first w0 span: must land on a second track.
		{Trace: tr, ID: "c000000000000000", Parent: "a000000000000000", Service: "w0", Name: "cell lu", StartUs: base.UnixMicro() + 200, DurUs: 2000},
		// Instant event.
		{Trace: tr, ID: "d000000000000000", Parent: "a000000000000000", Service: "mtcoord", Name: "steal", StartUs: base.UnixMicro() + 300},
	}

	var b1, b2 strings.Builder
	if err := WritePerfetto(&b1, tr, spans); err != nil {
		t.Fatal(err)
	}
	// Same spans in a different input order must render identical bytes.
	shuffled := []Span{spans[2], spans[0], spans[3], spans[1]}
	if err := WritePerfetto(&b2, tr, shuffled); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("export is input-order sensitive")
	}

	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(b1.String()), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.OtherData["trace_id"] != tr {
		t.Errorf("trace_id = %v", f.OtherData["trace_id"])
	}
	procNames := map[string]bool{}
	tids := map[string]map[float64]bool{}
	for _, ev := range f.TraceEvents {
		if ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			procNames[args["name"].(string)] = true
		}
		if ev["cat"] == "span" {
			args := ev["args"].(map[string]any)
			svc := "mtcoord"
			if strings.HasPrefix(args["id"].(string), "b") || strings.HasPrefix(args["id"].(string), "c") {
				svc = "w0"
			}
			if tids[svc] == nil {
				tids[svc] = map[float64]bool{}
			}
			tids[svc][ev["tid"].(float64)] = true
		}
	}
	if !procNames["mtcoord"] || !procNames["w0"] {
		t.Errorf("process names = %v, want mtcoord and w0", procNames)
	}
	if len(tids["w0"]) != 2 {
		t.Errorf("overlapping w0 spans used %d tracks, want 2", len(tids["w0"]))
	}
}

// TestSpanStoreAddSpanAndEvent: explicit-interval and instant records.
func TestSpanStoreAddSpanAndEvent(t *testing.T) {
	s := NewSpanStore(16)
	root := NewTrace()
	t0 := time.Now()
	s.AddSpan(root, "w0", "queue wait", t0, t0.Add(3*time.Millisecond))
	s.AddEvent(root, "mtcoord", "steal", "4 cells w0 -> w1")
	spans := s.Trace(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Parent != root.Span {
			t.Errorf("span %q parent = %q, want %q", sp.Name, sp.Parent, root.Span)
		}
		switch sp.Name {
		case "queue wait":
			if sp.DurUs != 3000 {
				t.Errorf("queue wait dur = %d, want 3000", sp.DurUs)
			}
		case "steal":
			if sp.DurUs != 0 || sp.Note == "" {
				t.Errorf("steal event = %+v, want instant with note", sp)
			}
		}
	}
}
