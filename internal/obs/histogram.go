package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket log-scale latency/throughput distribution.
// Buckets are powers of two: the i-th finite bucket covers values v with
// 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1), and one overflow bucket
// holds everything above the last finite bound. The fixed layout keeps
// Observe allocation-free (three atomic adds) and the rendered exposition
// deterministic: same observations, same bytes, regardless of order.
//
// Units are the caller's choice and should be part of the metric name
// (serve_request_latency_us, serve_engine_cycles_per_sec). Negative
// observations are clamped to zero.

// histFiniteBuckets is the number of finite power-of-two buckets; the
// largest finite upper bound is 2^(histFiniteBuckets-1) = 2^31, which at
// microsecond resolution covers ~36 minutes — beyond any request this
// server answers.
const histFiniteBuckets = 32

// Histogram is one named distribution. All methods are safe for
// concurrent use; Observe is allocation-free.
type Histogram struct {
	name    string
	help    string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histFiniteBuckets + 1]atomic.Int64
}

// NewHistogram returns a standalone histogram (not attached to a
// MetricSet); use MetricSet.Histogram to register one for /metrics.
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// histBucketIndex maps a value to its bucket. Exposed for the
// bucket-boundary golden test.
func histBucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(v-1) is ceil(log2(v)) for v >= 2: the index of the first
	// power-of-two bound >= v.
	i := bits.Len64(uint64(v - 1))
	if i > histFiniteBuckets {
		return histFiniteBuckets
	}
	return i
}

// histBucketBound returns the inclusive upper bound of finite bucket i.
func histBucketBound(i int) int64 { return int64(1) << uint(i) }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histBucketIndex(v)].Add(1)
}

// ObserveSince records the elapsed wall time since t0 in microseconds —
// the unit every latency histogram in this repo uses.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Microseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound for the p-th quantile (0 < p <= 1):
// the bucket bound at the nearest-rank position. Values in the overflow
// bucket report the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i <= histFiniteBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i >= histFiniteBuckets {
				return histBucketBound(histFiniteBuckets - 1)
			}
			return histBucketBound(i)
		}
	}
	return histBucketBound(histFiniteBuckets - 1)
}

// writeTo renders the histogram in the Prometheus text exposition format:
// cumulative _bucket series in ascending le order, then _sum and _count.
// Empty buckets past the last observation are elided (except le="+Inf")
// to keep /metrics readable; the output is still deterministic because
// elision depends only on the recorded values.
func (h *Histogram) writeTo(w io.Writer) (int64, error) {
	// Snapshot every cell first so one render is internally consistent
	// (le="+Inf" always equals _count) even under concurrent Observe.
	var snap [histFiniteBuckets + 1]int64
	var total int64
	for i := range snap {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	sum := h.sum.Load()

	var n int64
	c, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	n += int64(c)
	if err != nil {
		return n, err
	}
	// Find the last non-empty finite bucket so the tail of empty buckets
	// collapses into le="+Inf".
	last := 0
	for i := 0; i < histFiniteBuckets; i++ {
		if snap[i] != 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += snap[i]
		c, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, histBucketBound(i), cum)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	c, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		h.name, total, h.name, sum, h.name, total)
	n += int64(c)
	return n, err
}
